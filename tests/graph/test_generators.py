"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.generators import (
    paper_synthetic,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
    star_bipartite,
)


class TestRandomBipartite:
    def test_exact_edge_count(self):
        g = random_bipartite(50, 40, 300, seed=0)
        assert g.num_edges == 300
        g.validate()

    def test_deterministic(self):
        a = random_bipartite(20, 20, 100, seed=7)
        b = random_bipartite(20, 20, 100, seed=7)
        assert np.array_equal(a.u_neighbors, b.u_neighbors)

    def test_different_seeds_differ(self):
        a = random_bipartite(20, 20, 100, seed=7)
        b = random_bipartite(20, 20, 100, seed=8)
        assert not np.array_equal(a.u_neighbors, b.u_neighbors)

    def test_too_many_edges(self):
        with pytest.raises(GraphValidationError):
            random_bipartite(3, 3, 10)


class TestPowerLaw:
    def test_shape(self):
        g = power_law_bipartite(200, 100, 800, seed=1)
        g.validate()
        assert g.num_u == 200 and g.num_v == 100
        # close to the requested edge budget (dedup can trim slightly)
        assert 0.5 * 800 <= g.num_edges <= 1.5 * 800

    def test_skewed_degrees(self):
        g = power_law_bipartite(300, 200, 1500, gamma=1.8, seed=2)
        dv = g.degrees(LAYER_V)
        assert dv.max() >= 4 * max(dv.mean(), 1)  # heavy head on V

    def test_deterministic(self):
        a = power_law_bipartite(40, 30, 150, seed=3)
        b = power_law_bipartite(40, 30, 150, seed=3)
        assert np.array_equal(a.u_neighbors, b.u_neighbors)


class TestPaperSynthetic:
    def test_valid(self):
        g = paper_synthetic(60, 50, mean_degree=8, locality=16, seed=4)
        g.validate()

    def test_locality_increases_two_hop_density(self):
        from repro.graph.twohop import n2k
        tight = paper_synthetic(60, 50, mean_degree=8, locality=12, seed=5)
        loose = paper_synthetic(60, 50, mean_degree=8, locality=50, seed=5)
        tight_mean = np.mean([len(n2k(tight, LAYER_U, u, 2))
                              for u in range(60)])
        loose_mean = np.mean([len(n2k(loose, LAYER_U, u, 2))
                              for u in range(60)])
        assert tight_mean > loose_mean


class TestPlanted:
    def test_plants_are_complete(self):
        g = planted_bicliques(10, 10, [(3, 4)], noise_edges=0, seed=0)
        for u in range(3):
            assert g.neighbors(LAYER_U, u).tolist() == [0, 1, 2, 3]

    def test_plants_disjoint(self):
        g = planted_bicliques(10, 10, [(2, 2), (3, 3)], seed=0)
        assert g.num_edges == 4 + 9

    def test_overflow_rejected(self):
        with pytest.raises(GraphValidationError):
            planted_bicliques(4, 4, [(3, 3), (3, 3)])

    def test_noise_added(self):
        base = planted_bicliques(15, 15, [(3, 3)], noise_edges=0, seed=2)
        noisy = planted_bicliques(15, 15, [(3, 3)], noise_edges=20, seed=2)
        assert noisy.num_edges == base.num_edges + 20


class TestStar:
    def test_center_u(self):
        g = star_bipartite(6, center_on_u=True)
        assert g.num_u == 1 and g.num_v == 6 and g.num_edges == 6

    def test_center_v(self):
        g = star_bipartite(6, center_on_u=False)
        assert g.num_u == 6 and g.degree(LAYER_V, 0) == 6
