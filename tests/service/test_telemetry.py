"""Telemetry: counters, distributions, snapshot shape, thread safety."""

import json
import threading
from datetime import datetime

import pytest

from repro.service.telemetry import Telemetry, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        data = [10.0, 20.0, 30.0, 40.0]
        assert percentile(data, 50) == 20.0
        assert percentile(data, 90) == 40.0
        assert percentile(data, 100) == 40.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_half_integer_ranks_round_down_not_bankers(self):
        # ceil(0.5 * 2) = 1 -> first sample; int(round(x + .5)) used to
        # banker's-round this to the second
        assert percentile([1.0, 3.0], 50) == 1.0
        assert percentile([float(i) for i in range(1, 11)], 90) == 9.0


class TestTelemetry:
    def test_snapshot_counts_events(self):
        t = Telemetry()
        t.record_submit(queue_depth=3)
        t.record_submit(queue_depth=1)
        t.record_batch(2)
        t.record_completed(0.010)
        t.record_completed(0.030)
        t.record_rejected()
        t.record_expired()
        t.record_failed()
        snap = t.snapshot()
        assert snap["submitted"] == 2
        assert snap["completed"] == 2
        assert snap["rejected"] == 1
        assert snap["expired"] == 1
        assert snap["failed"] == 1
        assert snap["queue_depth"] == {"last": 1, "max": 3}
        assert snap["batches"]["count"] == 1
        assert snap["batches"]["mean_size"] == 2.0
        assert snap["latency_ms"]["samples"] == 2
        assert 10.0 <= snap["latency_ms"]["p50"] <= 30.0
        assert snap["throughput_qps"] > 0

    def test_snapshot_is_json_serialisable(self):
        t = Telemetry()
        t.record_batch(3)
        t.record_completed(0.001)
        assert json.loads(json.dumps(t.snapshot()))["completed"] == 1

    def test_batch_histogram_keys_are_strings(self):
        t = Telemetry()
        t.record_batch(1)
        t.record_batch(1)
        t.record_batch(4)
        snap = t.snapshot()
        assert snap["batches"]["histogram"] == {"1": 2, "4": 1}
        assert snap["batches"]["max_size"] == 4

    def test_latency_cap_decimates_not_grows(self):
        t = Telemetry(max_latency_samples=64)
        for i in range(1000):
            t.record_completed(0.001 * (i + 1))
        snap = t.snapshot()
        assert snap["latency_ms"]["samples"] < 128
        assert snap["completed"] == 1000      # counters stay exact
        assert snap["latency_ms"]["max"] <= 1000.0

    def test_snapshot_reports_min_p95_and_start_time(self):
        t = Telemetry()
        for ms in (5.0, 10.0, 20.0, 40.0):
            t.record_completed(ms / 1e3)
        snap = t.snapshot()
        lat = snap["latency_ms"]
        assert lat["min"] == pytest.approx(5.0)
        assert lat["p95"] == pytest.approx(40.0)
        assert lat["min"] <= lat["p50"] <= lat["p95"] <= lat["max"]
        # started_at is a UTC ISO-8601 instant, stable across snapshots
        assert snap["started_at"].endswith("Z")
        datetime.strptime(snap["started_at"], "%Y-%m-%dT%H:%M:%SZ")
        assert t.snapshot()["started_at"] == snap["started_at"]

    def test_empty_latency_extremes_are_zero(self):
        lat = Telemetry().snapshot()["latency_ms"]
        assert lat["min"] == 0.0 and lat["p95"] == 0.0

    def test_decimation_doubles_the_stride_and_keeps_percentiles_sane(self):
        t = Telemetry(max_latency_samples=64)
        for i in range(1000):
            t.record_completed(0.001 * (i + 1))   # 1ms .. 1000ms ramp
        # stride doubles on every cap hit, so the sample count stays
        # bounded while the retained samples still span the ramp
        assert t._latency_stride > 1
        assert t._latency_stride & (t._latency_stride - 1) == 0
        snap = t.snapshot()["latency_ms"]
        assert snap["samples"] <= 64
        assert 0.0 < snap["min"] < snap["p50"] < snap["p95"] <= 1000.0
        # late (large) samples survive decimation: p95 is in the top
        # quarter of the ramp, not stuck on early values
        assert snap["p95"] > 750.0

    def test_concurrent_recording_is_exact(self):
        t = Telemetry()
        n, threads = 500, 8

        def hammer():
            for _ in range(n):
                t.record_submit(queue_depth=1)
                t.record_batch(1)
                t.record_completed(0.001)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for th in pool:
            th.start()
        for th in pool:
            th.join()
        snap = t.snapshot()
        assert snap["submitted"] == n * threads
        assert snap["completed"] == n * threads
        assert snap["batches"]["count"] == n * threads
