"""Scheduler: batching, correctness, and every failure path.

The failure-path coverage is the point here: deadline expiry, queue-full
backpressure, closed-scheduler admission, non-draining shutdown, and a
session evicted mid-flight (which must transparently rebuild, never
crash a request).
"""

import asyncio
import threading
import time

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.errors import (DeadlineExceededError, QueueFullError,
                          ServiceClosedError, ServiceError)
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler, SchedulerConfig

GRAPHS = {
    "a": random_bipartite(30, 20, 120, seed=2),
    "b": power_law_bipartite(40, 30, 160, seed=3),
}


def make_pool(**kwargs) -> SessionPool:
    pool = SessionPool(**kwargs)
    for name, graph in GRAPHS.items():
        pool.register(name, graph)
    return pool


class TestConfig:
    @pytest.mark.parametrize("bad", [
        {"batch_window": -0.1}, {"max_batch": 0},
        {"max_pending": 0}, {"workers": 0},
    ])
    def test_invalid_tunables_raise(self, bad):
        with pytest.raises(ServiceError):
            SchedulerConfig(**bad)

    def test_config_and_overrides_conflict(self):
        pool = make_pool()
        with pytest.raises(ServiceError, match="not both"):
            Scheduler(pool, config=SchedulerConfig(), workers=3)

    def test_bad_deadline_rejected_at_submit(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            with pytest.raises(ServiceError, match="deadline"):
                sched.submit("a", 2, 2, deadline=0.0)


class TestServing:
    def test_single_request_matches_direct_call(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            result = sched.count("a", 2, 2)
        direct = gbc_count(GRAPHS["a"], BicliqueQuery(2, 2), backend="fast")
        assert result.count == direct.count

    def test_coalesced_batch_is_bit_identical_per_request(self):
        with Scheduler(make_pool(), batch_window=0.05,
                       workers=1) as sched:
            futures = [(name, p, q, sched.submit(name, p, q))
                       for name in ("a", "b")
                       for p, q in ((2, 2), (2, 3), (3, 3))
                       for _ in range(3)]
            served = [(n, p, q, f.result(timeout=60).count)
                      for n, p, q, f in futures]
        for name, p, q, count in served:
            direct = gbc_count(GRAPHS[name], BicliqueQuery(p, q),
                               backend="fast").count
            assert count == direct, (name, p, q)
        snap = sched.telemetry.snapshot()
        assert snap["completed"] == len(served)
        assert snap["batches"]["mean_size"] > 1.0   # coalescing happened

    @pytest.mark.parametrize("backend", ["sim", "fast", "par"])
    def test_backends_all_serve_identical_counts(self, backend):
        with Scheduler(make_pool(), batch_window=0.0,
                       backend=backend) as sched:
            count = sched.count("b", 2, 2, timeout=120).count
        assert count == gbc_count(GRAPHS["b"], BicliqueQuery(2, 2),
                                  backend="fast").count

    def test_per_request_method_override(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            result = sched.count("a", 2, 2, method="BCL")
        assert result.algorithm == "BCL"

    def test_unknown_method_fails_fast_at_submit(self):
        """A bad method name must be an admission failure — raised by
        submit itself, never parked on a future where it would poison a
        worker batch."""
        from repro.errors import UnknownMethodError

        with Scheduler(make_pool(), batch_window=0.0) as sched:
            with pytest.raises(UnknownMethodError, match="NOPE"):
                sched.submit("a", 2, 2, method="NOPE")
            assert sched.pending() == 0
            # the scheduler is unharmed: valid work still completes
            assert sched.count("a", 2, 2).count == gbc_count(
                GRAPHS["a"], BicliqueQuery(2, 2), backend="fast").count

    def test_unknown_default_method_rejected_at_config(self):
        from repro.errors import UnknownMethodError
        from repro.service.scheduler import SchedulerConfig

        with pytest.raises(UnknownMethodError):
            SchedulerConfig(method="NOPE")

    def test_auto_method_serves_bit_identical(self):
        with Scheduler(make_pool(), batch_window=0.0,
                       method="auto") as sched:
            result = sched.count("a", 2, 2)
            override = sched.count("a", 2, 2, method="auto")
        direct = gbc_count(GRAPHS["a"], BicliqueQuery(2, 2),
                           backend="fast")
        assert result.count == direct.count
        assert override.count == direct.count

    def test_asyncio_front_end(self):
        async def drive(sched):
            return await asyncio.gather(
                sched.submit_async("a", 2, 2),
                sched.submit_async("a", 2, 3),
                sched.submit_async("b", 2, 2))

        with Scheduler(make_pool(), batch_window=0.01) as sched:
            results = asyncio.run(drive(sched))
        assert [r.count for r in results] == [
            gbc_count(GRAPHS[n], BicliqueQuery(p, q), backend="fast").count
            for n, p, q in (("a", 2, 2), ("a", 2, 3), ("b", 2, 2))]

    def test_invalid_query_rejected_synchronously(self):
        from repro.errors import QueryError

        with Scheduler(make_pool(), batch_window=0.0) as sched:
            with pytest.raises(QueryError):
                sched.submit("a", 0, 2)


class TestFailurePaths:
    def test_deadline_exceeded_before_execution(self):
        with Scheduler(make_pool(), batch_window=0.25) as sched:
            future = sched.submit("a", 2, 2, deadline=0.01)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
        assert sched.telemetry.snapshot()["expired"] == 1

    def test_generous_deadline_is_met(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            assert sched.count("a", 2, 2, deadline=60).count >= 0
        assert sched.telemetry.snapshot()["expired"] == 0

    def test_queue_full_backpressure(self):
        # a huge window keeps requests queued; the 3rd must bounce
        with Scheduler(make_pool(), batch_window=30.0,
                       max_pending=2) as sched:
            sched.submit("a", 2, 2)
            sched.submit("a", 2, 3)
            with pytest.raises(QueueFullError, match="2 requests"):
                sched.submit("a", 3, 3)
            snap = sched.telemetry.snapshot()
            assert snap["rejected"] == 1
            assert snap["queue_depth"]["max"] == 2
            sched.close(drain=False)

    def test_close_without_drain_fails_pending(self):
        with Scheduler(make_pool(), batch_window=30.0) as sched:
            future = sched.submit("a", 2, 2)
            sched.close(drain=False)
            with pytest.raises(ServiceClosedError):
                future.result(timeout=30)
        assert sched.pending() == 0

    def test_close_with_drain_completes_pending(self):
        sched = Scheduler(make_pool(), batch_window=30.0)
        future = sched.submit("a", 2, 2)
        sched.close()                   # drain=True executes the bucket
        assert future.result(timeout=30).count == gbc_count(
            GRAPHS["a"], BicliqueQuery(2, 2), backend="fast").count

    def test_submit_after_close_raises(self):
        sched = Scheduler(make_pool(), batch_window=0.0)
        sched.close()
        with pytest.raises(ServiceClosedError):
            sched.submit("a", 2, 2)
        assert sched.telemetry.snapshot()["rejected"] == 1

    def test_unknown_graph_fails_only_its_requests(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            bad = sched.submit("nope", 2, 2)
            good = sched.submit("a", 2, 2)
            assert good.result(timeout=30).count >= 0
            with pytest.raises(ServiceError, match="unknown graph"):
                bad.result(timeout=30)
        assert sched.telemetry.snapshot()["failed"] == 1

    def test_mid_flight_eviction_transparently_rebuilds(self):
        # a pool with room for one session, served two graphs: every
        # alternation evicts the other's session mid-workload, and each
        # request must rebuild and answer correctly rather than crash
        pool = make_pool(max_sessions=1)
        expected = {
            (name, p, q): gbc_count(GRAPHS[name], BicliqueQuery(p, q),
                                    backend="fast").count
            for name in GRAPHS for p, q in ((2, 2), (2, 3))}
        with Scheduler(pool, batch_window=0.0, workers=2) as sched:
            # synchronous alternation makes every request its own batch,
            # so each one evicts the other graph's session
            for _ in range(3):
                for name in ("a", "b"):
                    for p, q in ((2, 2), (2, 3)):
                        assert sched.count(name, p, q, timeout=60).count \
                            == expected[name, p, q], (name, p, q)
        assert pool.stats.evictions >= 5    # the thrash really happened
        assert pool.stats.builds >= 6       # ... and rebuilds served it

    def test_concurrent_submitters_all_complete(self):
        errors = []
        with Scheduler(make_pool(), batch_window=0.005,
                       workers=2) as sched:
            def client(i):
                try:
                    name = "a" if i % 2 else "b"
                    assert sched.count(name, 2, 2, timeout=60).count >= 0
                except Exception as exc:   # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert sched.telemetry.snapshot()["completed"] == 16


class TestBatchFormation:
    def test_oversize_bucket_splits_at_max_batch(self):
        with Scheduler(make_pool(), batch_window=0.05, max_batch=4,
                       workers=1) as sched:
            futures = [sched.submit("a", 2, 2) for _ in range(10)]
            for f in futures:
                f.result(timeout=60)
        sizes = sched.telemetry.snapshot()["batches"]["histogram"]
        assert max(int(s) for s in sizes) <= 4

    def test_full_batch_dispatches_before_window(self):
        with Scheduler(make_pool(), batch_window=30.0, max_batch=2,
                       workers=1) as sched:
            t0 = time.monotonic()
            futures = [sched.submit("a", 2, 2), sched.submit("a", 2, 3)]
            for f in futures:
                f.result(timeout=30)
            assert time.monotonic() - t0 < 25.0   # did not wait the window
