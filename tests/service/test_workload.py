"""Workload specs: determinism, declarativity, open/closed-loop drives."""

import pytest

from repro.core.gbc import gbc_count
from repro.core.counts import BicliqueQuery
from repro.errors import ServiceError
from repro.graph.generators import random_bipartite
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler
from repro.service.workload import (WorkloadSpec, generate_requests,
                                    run_workload)

GRAPHS = {
    "hot": random_bipartite(30, 20, 120, seed=2),
    "cold": random_bipartite(25, 20, 100, seed=3),
}


def make_scheduler(**kwargs) -> Scheduler:
    pool = SessionPool()
    for name, graph in GRAPHS.items():
        pool.register(name, graph)
    return Scheduler(pool, **kwargs)


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = WorkloadSpec(graphs=("hot", "cold"), num_queries=10,
                            mode="open", rate_qps=50.0, seed=9)
        assert WorkloadSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServiceError, match="unknown workload keys"):
            WorkloadSpec.from_dict({"graphs": ["g"], "typo": 1})

    @pytest.mark.parametrize("bad", [
        {"graphs": ()},
        {"graphs": ("g",), "shapes": ()},
        {"graphs": ("g",), "mode": "sideways"},
        {"graphs": ("g",), "clients": 0},
        {"graphs": ("g",), "mode": "open", "rate_qps": 0.0},
        {"graphs": ("g", "h"), "shape_weights": (1.0,)},
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ServiceError):
            WorkloadSpec(**bad)


class TestGeneration:
    def test_deterministic_in_seed_and_offset(self):
        spec = WorkloadSpec(graphs=("hot", "cold"), seed=5)
        assert generate_requests(spec, 50) == generate_requests(spec, 50)
        assert generate_requests(spec, 50, seed_offset=1) \
            != generate_requests(spec, 50)

    def test_zipf_skews_toward_first_graph(self):
        spec = WorkloadSpec(graphs=("hot", "cold"), zipf_s=2.0, seed=0)
        reqs = generate_requests(spec, 400)
        hot = sum(1 for name, _, _ in reqs if name == "hot")
        assert hot > 250        # rank-1 weight is 2**2 = 4x rank-2's

    def test_shapes_respect_weights(self):
        spec = WorkloadSpec(graphs=("hot",), shapes=((2, 2), (3, 3)),
                            shape_weights=(0.0, 1.0), seed=1)
        assert {(p, q) for _, p, q in generate_requests(spec, 30)} \
            == {(3, 3)}


class TestRunWorkload:
    def test_closed_loop_serves_exact_budget(self):
        spec = WorkloadSpec(graphs=("hot", "cold"), num_queries=40,
                            clients=4, seed=7)
        with make_scheduler(batch_window=0.002) as sched:
            result = run_workload(sched, spec)
        assert result.issued == 40
        assert result.completed == 40
        assert result.rejected == result.expired == result.failed == 0
        assert result.throughput_qps > 0
        # every served count is bit-identical to a direct run
        for s in result.served:
            direct = gbc_count(GRAPHS[s.graph], BicliqueQuery(s.p, s.q),
                               backend="fast")
            assert s.count == direct.count, s

    def test_closed_loop_duration_mode_stops(self):
        spec = WorkloadSpec(graphs=("hot",), duration_seconds=0.3,
                            clients=2, seed=1)
        with make_scheduler(batch_window=0.0) as sched:
            result = run_workload(sched, spec)
        assert result.completed > 0
        assert result.wall_seconds < 5.0

    def test_open_loop_issues_at_rate(self):
        spec = WorkloadSpec(graphs=("hot", "cold"), num_queries=30,
                            mode="open", rate_qps=500.0, seed=2)
        with make_scheduler(batch_window=0.002) as sched:
            result = run_workload(sched, spec)
        assert result.issued == 30
        assert result.completed + result.rejected \
            + result.expired + result.failed == 30
        assert result.completed > 0

    def test_open_loop_overload_reports_backpressure(self):
        spec = WorkloadSpec(graphs=("hot",), num_queries=40, mode="open",
                            rate_qps=100_000.0, seed=3)
        # one worker + a long window + a tiny queue: must reject some
        with make_scheduler(batch_window=0.2, workers=1,
                            max_pending=4) as sched:
            result = run_workload(sched, spec)
        assert result.rejected > 0
        assert result.completed + result.rejected \
            + result.expired + result.failed == 40

    def test_deadlines_flow_through(self):
        spec = WorkloadSpec(graphs=("hot",), num_queries=8, clients=4,
                            deadline=1e-4, seed=4)
        # window far beyond the deadline: every request expires
        with make_scheduler(batch_window=0.3) as sched:
            result = run_workload(sched, spec)
        assert result.expired == 8
        assert result.completed == 0

    def test_non_repro_errors_are_recorded_not_raised(self):
        # a loader raising an arbitrary exception must surface as a
        # failed-request count, not kill the client thread or the drive
        pool = SessionPool()

        def broken_loader():
            raise FileNotFoundError("edge list missing")

        pool.register("broken", broken_loader)
        spec = WorkloadSpec(graphs=("broken",), num_queries=6, clients=2)
        with Scheduler(pool, batch_window=0.0) as sched:
            result = run_workload(sched, spec)
        assert result.issued == 6
        assert result.failed == 6
        assert result.completed == 0

    def test_client_streams_never_run_dry(self):
        # duration-bounded clients draw from an endless chunked stream;
        # pulling far past one chunk must keep yielding, stay
        # deterministic, and not collide with the other clients' chunks
        from itertools import islice

        from repro.service.workload import _endless_stream

        spec = WorkloadSpec(graphs=("hot", "cold"), num_queries=10,
                            clients=2, seed=8)
        first = list(islice(_endless_stream(spec, 0, stride=2), 5000))
        again = list(islice(_endless_stream(spec, 0, stride=2), 5000))
        other = list(islice(_endless_stream(spec, 1, stride=2), 5000))
        assert len(first) == 5000       # >> the 1024-request chunk
        assert first == again           # deterministic continuation
        assert first != other           # disjoint across clients

    def test_result_as_dict_is_json_shaped(self):
        import json

        spec = WorkloadSpec(graphs=("hot",), num_queries=5, clients=1)
        with make_scheduler(batch_window=0.0) as sched:
            result = run_workload(sched, spec)
        data = json.loads(json.dumps(result.as_dict()))
        assert data["completed"] == 5
        assert data["spec"]["graphs"] == ["hot"]
