"""Mutate-while-serving under real thread contention.

The serving guarantee of the dynamic layer: readers *never* observe a
mid-edit state.  Every result a reader gets back carries the epoch its
batch pinned (``result.extras["epoch"]``), and its count must be
bit-identical to the exact count of the graph at that epoch — verified
here against a per-epoch expected table the writer records as it edits.

The stress shape is the acceptance scenario: at least eight reader
threads hammering the scheduler (and raw ``batch_count`` snapshots)
while a single writer applies a toggle stream, plus mid-flight eviction
of both the dynamic entry and a pooled static session under mutation.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.dynamic import DynamicGraphSession, EdgeMutation
from repro.errors import ServiceError
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.query import batch_count
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler

SHAPES = ((2, 2), (2, 3), (3, 3))
NUM_READERS = 8
NUM_EDITS = 60


def make_dynamic(seed: int = 7) -> DynamicGraphSession:
    graph = random_bipartite(24, 20, 90, seed=seed)
    return DynamicGraphSession.from_graph(graph, name="dyn", track=SHAPES)


def record_expected(dyn: DynamicGraphSession, table: dict) -> None:
    """Pin the exact tracked counts at the session's current epoch.

    Only the (single) writer thread calls this, immediately after each
    edit, so the epoch cannot advance between the reads.
    """
    table[dyn.epoch] = {s: dyn.count(*s) for s in SHAPES}


def run_stress(sched: Scheduler, dyn: DynamicGraphSession, *,
               readers: int = NUM_READERS, edits: int = NUM_EDITS,
               reader_graphs: tuple[str, ...] = ("dyn",),
               chaos=None, writer_pace: float = 0.003):
    """Drive one writer + ``readers`` reader threads to completion.

    Returns ``(expected, observations, static_observations, errors)``:
    the writer's epoch -> shape -> count table, every dynamic-graph
    result as ``(epoch, shape, count)``, every static-graph result as
    ``(name, shape, count)``, and any exception a thread hit.  An
    optional ``chaos()`` callback runs in its own thread until the
    writer finishes (eviction hammering lives there).
    """
    expected: dict[int, dict] = {}
    record_expected(dyn, expected)
    observations: list[tuple[int, tuple, int]] = []
    static_observations: list[tuple[str, tuple, int]] = []
    lock = threading.Lock()
    errors: list[Exception] = []
    start = threading.Event()
    done = threading.Event()

    def writer():
        # paced: an unthrottled writer outruns the readers' batch
        # windows and every read would pin the final epoch — the pace
        # spreads the edits across the readers' lifetime so results
        # genuinely arrive from many different versions
        rng = np.random.default_rng(11)
        try:
            start.wait()
            for _ in range(edits):
                u = int(rng.integers(dyn.num_u))
                v = int(rng.integers(dyn.num_v))
                sched.mutate("dyn", [EdgeMutation.toggle(u, v)])
                record_expected(dyn, expected)
                time.sleep(writer_pace)
        except Exception as exc:        # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    def reader(i):
        # offset each reader's shape rotation so batches mix shapes
        shapes = SHAPES[i % len(SHAPES):] + SHAPES[:i % len(SHAPES)]
        graphs = reader_graphs[i % len(reader_graphs):] \
            + reader_graphs[:i % len(reader_graphs)]
        try:
            start.wait()
            while True:
                finished = done.is_set()
                for name in graphs:
                    for p, q in shapes:
                        result = sched.count(name, p, q, timeout=60)
                        with lock:
                            if name == "dyn":
                                observations.append(
                                    (int(result.extras["epoch"]),
                                     (p, q), result.count))
                            else:
                                static_observations.append(
                                    (name, (p, q), result.count))
                if finished:            # one full sweep after the writer
                    return
        except Exception as exc:        # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader, args=(i,))
                for i in range(readers)]
    if chaos is not None:
        def chaos_loop():
            try:
                start.wait()
                while not done.is_set():
                    chaos()
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)
        threads.append(threading.Thread(target=chaos_loop))
    for t in threads:
        t.start()
    start.set()
    for t in threads:
        t.join()
    return expected, observations, static_observations, errors


def assert_epoch_consistent(expected, observations):
    """Every observed (epoch, shape, count) matches the writer's table."""
    for epoch, shape, count in observations:
        assert epoch in expected, (
            f"reader pinned epoch {epoch} the writer never produced")
        assert count == expected[epoch][shape], (
            f"mid-edit state observed: shape {shape} at epoch {epoch} "
            f"served {count}, exact is {expected[epoch][shape]}")


class TestReadersNeverSeeMidEditState:
    def test_eight_readers_one_writer(self):
        dyn = make_dynamic()
        pool = SessionPool()
        pool.register("dyn", dyn)
        with Scheduler(pool, batch_window=0.002, workers=2) as sched:
            expected, observations, _, errors = run_stress(sched, dyn)
        assert not errors
        assert len(expected) == NUM_EDITS + 1   # every epoch recorded
        assert_epoch_consistent(expected, observations)
        # the race was real: many reads, spread over many versions
        assert len(observations) >= NUM_READERS * len(SHAPES)
        assert len({epoch for epoch, _, _ in observations}) > 1
        assert pool.stats.mutations == NUM_EDITS

    def test_eviction_and_rebuild_under_mutation(self):
        """Hammering evict() mid-stream — dropping the dynamic entry's
        cached snapshot state and thrashing a static co-tenant out of a
        one-slot pool — must never surface a wrong or torn count."""
        dyn = make_dynamic(seed=9)
        static_graph = power_law_bipartite(30, 25, 110, seed=4)
        pool = SessionPool(max_sessions=1)
        pool.register("dyn", dyn)
        pool.register("static", static_graph)
        static_expected = {
            (p, q): gbc_count(static_graph, BicliqueQuery(p, q),
                              backend="fast").count
            for p, q in SHAPES}

        def chaos():
            pool.evict("dyn")
            pool.evict("static")

        with Scheduler(pool, batch_window=0.002, workers=2) as sched:
            expected, observations, static_obs, errors = run_stress(
                sched, dyn, edits=40,
                reader_graphs=("dyn", "static"), chaos=chaos)
        assert not errors
        assert_epoch_consistent(expected, observations)
        for name, shape, count in static_obs:
            assert count == static_expected[shape], (name, shape)
        assert observations and static_obs
        assert pool.stats.evictions > 0     # the chaos really landed


class TestSnapshotIsolation:
    def test_pinned_snapshot_survives_writer_progress(self):
        """A snapshot pinned before a burst of edits keeps answering
        from its own epoch — batch_count over it is bit-identical to
        the pre-edit graph, not the live one."""
        dyn = make_dynamic(seed=13)
        before = {s: dyn.count(*s) for s in SHAPES}
        snap = dyn.pinned()
        pinned_epoch = snap.epoch

        rng = np.random.default_rng(5)
        for _ in range(25):
            dyn.toggle(int(rng.integers(dyn.num_u)),
                       int(rng.integers(dyn.num_v)))
        assert dyn.epoch == pinned_epoch + 25

        batch = batch_count(snap, [f"{p}x{q}" for p, q in SHAPES])
        served = {(r.query.p, r.query.q): r.count for r in batch.results}
        assert served == before
        assert snap.epoch == pinned_epoch
        # and the live session has genuinely moved on
        assert {s: dyn.count(*s) for s in SHAPES} != before or \
            dyn.num_edges == snap.num_edges

    def test_concurrent_batch_count_on_rotating_snapshots(self):
        """Raw batch_count (no scheduler) from many threads, each
        pinning its own snapshot while the writer edits: every batch is
        internally consistent with its snapshot's epoch."""
        dyn = make_dynamic(seed=21)
        expected: dict[int, dict] = {}
        record_expected(dyn, expected)
        errors: list[Exception] = []
        checked = []
        done = threading.Event()
        lock = threading.Lock()

        def writer():
            rng = np.random.default_rng(3)
            try:
                for _ in range(NUM_EDITS):
                    dyn.toggle(int(rng.integers(dyn.num_u)),
                               int(rng.integers(dyn.num_v)))
                    record_expected(dyn, expected)
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while True:
                    finished = done.is_set()
                    snap = dyn.pinned()
                    batch = batch_count(
                        snap, [f"{p}x{q}" for p, q in SHAPES])
                    with lock:
                        for r in batch.results:
                            checked.append((snap.epoch,
                                            (r.query.p, r.query.q),
                                            r.count))
                    if finished:
                        return
            except Exception as exc:    # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader)
                    for _ in range(NUM_READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert_epoch_consistent(expected, checked)
        assert len(checked) >= NUM_READERS * len(SHAPES)


class TestWritePathValidation:
    def test_mutating_a_static_entry_raises(self):
        pool = SessionPool()
        pool.register("static", random_bipartite(10, 10, 30, seed=1))
        with Scheduler(pool, batch_window=0.0) as sched:
            with pytest.raises(ServiceError, match="not dynamic"):
                sched.mutate("static", [EdgeMutation.toggle(0, 0)])

    def test_mutation_telemetry_flows_through(self):
        dyn = make_dynamic(seed=2)
        pool = SessionPool()
        pool.register("dyn", dyn)
        with Scheduler(pool, batch_window=0.0) as sched:
            epoch = sched.mutate("dyn", [EdgeMutation.toggle(0, 0),
                                         EdgeMutation.toggle(0, 0)])
            assert epoch == 2
            assert sched.count("dyn", 2, 2).extras["epoch"] == 2.0
        assert sched.telemetry.snapshot()["mutations"] == 2
        assert pool.snapshot()["dynamic_epochs"] == {"dyn": 2}
