"""Deadline-path regressions for the accuracy tiers in the service.

The scenario the approx tier exists for: a workload whose exact plans
cannot fit the per-request deadline.  Under ``accuracy="auto"`` every
request must still complete — answered by the sampling tier, carrying
its ci95 — and the answers must be good to the precision they claim
(checked against the exact count, the same oracle ``verify_served``
applies).  Under ``accuracy="exact"`` the same workload must *refuse*
rather than silently degrade: every request expires with
:class:`~repro.errors.DeadlineExceededError`.

The graph/deadline pair is picked so the admission decision is
deterministic: the best exact plan predicts ~50 ms against a 10 ms
deadline, a 5x margin no scheduler jitter can flip.
"""

from __future__ import annotations

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.errors import DeadlineExceededError, ServiceError
from repro.graph.generators import random_bipartite
from repro.plan import Planner
from repro.service.bench import verify_served
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.workload import WorkloadSpec, run_workload

#: dense enough that every exact plan predicts far beyond DEADLINE
GRAPH = random_bipartite(200, 150, 3000, seed=3)
QUERY = BicliqueQuery(3, 3)
DEADLINE = 0.01


@pytest.fixture(scope="module")
def exact_count():
    return gbc_count(GRAPH, QUERY).count


@pytest.fixture()
def scheduler():
    pool = SessionPool(max_sessions=1)
    pool.register("g", GRAPH)
    sched = Scheduler(pool, config=SchedulerConfig())
    yield sched
    sched.close()


def test_deadline_is_actually_infeasible_for_exact():
    """Guard the premise: if the cost model ever gets fast enough to
    predict this plan under the deadline, the tests below stop testing
    the fallback path — fail loudly here instead."""
    best = Planner(GRAPH).rank(QUERY)[0]
    assert best.predicted_seconds > 5 * DEADLINE


class TestSchedulerTiers:
    def test_auto_falls_back_to_approx(self, scheduler, exact_count):
        result = scheduler.count("g", QUERY.p, QUERY.q, accuracy="auto",
                                 deadline=DEADLINE)
        assert result.algorithm == "approx"
        assert result.extras["ci95"] >= 0.0
        assert abs(result.count - exact_count) \
            <= result.extras["ci95"] + 0.5
        assert scheduler.telemetry.snapshot()["approx_completed"] == 1

    def test_exact_refuses_instead_of_degrading(self, scheduler):
        with pytest.raises(DeadlineExceededError):
            scheduler.count("g", QUERY.p, QUERY.q, accuracy="exact",
                            deadline=DEADLINE)
        snap = scheduler.telemetry.snapshot()
        assert snap["expired"] == 1
        assert snap["failed"] == 0       # a miss is not a malfunction

    def test_no_deadline_stays_exact(self, scheduler, exact_count):
        result = scheduler.count("g", QUERY.p, QUERY.q, accuracy="auto")
        assert result.algorithm != "approx"
        assert result.count == exact_count

    def test_explicit_exact_method_with_approx_tier_rejected(self,
                                                             scheduler):
        """Naming an exact method AND a non-exact tier is a
        contradiction; it must fail at admission, before a worker batch
        could be poisoned by it."""
        with pytest.raises(ServiceError, match="plans the method"):
            scheduler.submit("g", QUERY.p, QUERY.q, method="GBC",
                             accuracy="approx")

    def test_approx_tier_without_deadline_samples_by_default(self,
                                                             scheduler):
        result = scheduler.count("g", QUERY.p, QUERY.q, accuracy="approx")
        assert result.algorithm == "approx"
        assert result.extras["samples"] > 0


class TestWorkloadUnderDeadline:
    def _run(self, accuracy: str):
        spec = WorkloadSpec(graphs=("g",), shapes=((QUERY.p, QUERY.q),),
                            num_queries=8, clients=2, method="auto",
                            deadline=DEADLINE, accuracy=accuracy, seed=6)
        pool = SessionPool(max_sessions=1)
        pool.register("g", GRAPH)
        sched = Scheduler(pool, config=SchedulerConfig())
        try:
            return run_workload(sched, spec)
        finally:
            sched.close()

    def test_auto_workload_completes_via_sampling(self, exact_count):
        result = self._run("auto")
        assert result.completed == 8
        assert result.expired == 0
        assert result.approx_served == result.completed
        for s in result.served:
            assert s.ci95 is not None
            assert abs(s.count - exact_count) <= s.ci95 + 0.5
        # the same oracle serve-bench artifacts are gated on
        assert verify_served({"g": GRAPH}, result) == []

    def test_exact_workload_expires_instead(self):
        result = self._run("exact")
        assert result.completed == 0
        assert result.expired == result.issued == 8
        assert result.failed == 0
