"""serve_bench: artifact shape, correctness oracle, CLI integration."""

import json


from repro.graph.generators import random_bipartite
from repro.service.bench import serve_bench, verify_served, write_artifact
from repro.service.workload import ServedQuery, WorkloadResult, WorkloadSpec

GRAPHS = {
    "x": random_bipartite(30, 20, 120, seed=11),
    "y": random_bipartite(25, 20, 100, seed=12),
}
SPEC = WorkloadSpec(graphs=("x", "y"), num_queries=30, clients=4, seed=6)


class TestServeBench:
    def test_artifact_shape_and_verification(self):
        artifact = serve_bench(GRAPHS, SPEC, naive_limit=10)
        assert artifact["kind"] == "serve_bench"
        assert artifact["served"]["completed"] == 30
        assert artifact["served"]["throughput_qps"] > 0
        assert artifact["naive"]["requests"] == 10
        assert artifact["naive"]["throughput_qps"] > 0
        assert artifact["speedup_vs_naive"] > 0
        assert artifact["verified"] is True
        assert artifact["mismatches"] == []
        assert artifact["telemetry"]["completed"] == 30
        assert artifact["pool"]["registered"] == 2
        json.dumps(artifact)        # fully serialisable

    def test_verify_skippable(self):
        artifact = serve_bench(GRAPHS, SPEC, naive_limit=5, verify=False)
        assert artifact["verified"] is False
        assert artifact["mismatches"] == "skipped"

    def test_verify_served_catches_wrong_counts(self):
        result = WorkloadResult(
            spec=SPEC, served=[ServedQuery("x", 2, 2, count=-1)])
        mismatches = verify_served(GRAPHS, result)
        assert len(mismatches) == 1
        assert mismatches[0]["graph"] == "x"
        assert mismatches[0]["served"] == [-1]

    def test_write_artifact_creates_dirs(self, tmp_path):
        target = tmp_path / "deep" / "BENCH_serve.json"
        path = write_artifact({"kind": "serve_bench"}, target)
        assert path == target
        assert json.loads(target.read_text())["kind"] == "serve_bench"

    def test_runner_entry_point_delegates(self):
        from repro.bench.runner import run_serve_bench

        artifact = run_serve_bench(GRAPHS, SPEC, naive_limit=5,
                                   verify=False)
        assert artifact["kind"] == "serve_bench"


class TestCli:
    def test_serve_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "BENCH_serve.json"
        code = main(["serve-bench", "--graphs", "YT,S1", "--scale", "tiny",
                     "--queries", "40", "--clients", "4",
                     "--naive-limit", "10", "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench" in out
        assert "verified" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["mismatches"] == []
        assert artifact["served"]["completed"] == 40
        assert artifact["telemetry"]["throughput_qps"] > 0

    def test_unknown_graph_key_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "--graphs", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_open_loop_smoke(self, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "BENCH_serve.json"
        code = main(["serve-bench", "--graphs", "YT", "--scale", "tiny",
                     "--mode", "open", "--queries", "30", "--rate", "500",
                     "--naive-limit", "5", "--output", str(out_path)])
        assert code == 0
        artifact = json.loads(out_path.read_text())
        assert artifact["spec"]["mode"] == "open"
