"""SessionPool: LRU eviction, budgets, loaders, concurrency."""

import threading

import pytest

from repro.errors import ServiceError
from repro.graph.generators import random_bipartite
from repro.query import GraphSession
from repro.service.pool import SessionPool, graph_resident_bytes


def make_pool(n_graphs=3, **kwargs):
    pool = SessionPool(**kwargs)
    graphs = {}
    for i in range(n_graphs):
        name = f"g{i}"
        graphs[name] = random_bipartite(20 + i, 15, 60, seed=i)
        pool.register(name, graphs[name])
    return pool, graphs


class TestRegistration:
    def test_register_graph_and_loader(self):
        pool = SessionPool()
        g = random_bipartite(10, 10, 30, seed=1)
        pool.register("obj", g)
        pool.register("lazy", lambda: random_bipartite(10, 10, 30, seed=2))
        assert pool.names() == ["lazy", "obj"]
        assert pool.live_names() == []          # nothing built yet
        assert pool.session("obj").graph is g
        assert isinstance(pool.session("lazy"), GraphSession)
        assert pool.stats.loads == 1            # only the loader ran

    def test_unknown_name_raises(self):
        pool, _ = make_pool(1)
        with pytest.raises(ServiceError, match="unknown graph"):
            pool.session("nope")

    def test_loader_returning_junk_raises(self):
        pool = SessionPool()
        pool.register("bad", lambda: object())
        with pytest.raises(ServiceError, match="expected BipartiteGraph"):
            pool.session("bad")

    def test_reregister_drops_live_session(self):
        pool, _ = make_pool(1)
        first = pool.session("g0")
        pool.register("g0", random_bipartite(9, 9, 20, seed=5))
        assert pool.live_names() == []
        assert pool.session("g0") is not first

    def test_invalid_budgets_raise(self):
        with pytest.raises(ServiceError):
            SessionPool(max_sessions=0)
        with pytest.raises(ServiceError):
            SessionPool(max_bytes=0)


class TestLRU:
    def test_entry_budget_evicts_least_recent(self):
        pool, _ = make_pool(3, max_sessions=2)
        pool.session("g0")
        pool.session("g1")
        pool.session("g0")              # refresh g0's recency
        pool.session("g2")              # over budget -> g1 goes
        assert pool.live_names() == ["g0", "g2"]
        assert pool.stats.evictions == 1
        assert pool.stats.evicted_by_name == {"g1": 1}

    def test_cached_session_is_reused(self):
        pool, _ = make_pool(1)
        assert pool.session("g0") is pool.session("g0")
        assert pool.stats.builds == 1
        assert pool.stats.hits == 1

    def test_rebuild_after_eviction(self):
        pool, _ = make_pool(2, max_sessions=1)
        first = pool.session("g0")
        pool.session("g1")              # evicts g0
        rebuilt = pool.session("g0")    # transparently rebuilt
        assert rebuilt is not first
        assert rebuilt.graph is first.graph     # same registered object
        assert pool.stats.builds == 3

    def test_memory_budget_evicts(self):
        g = random_bipartite(30, 30, 120, seed=0)
        one = graph_resident_bytes(g)
        pool = SessionPool(max_sessions=10, max_bytes=int(one * 1.5))
        pool.register("a", g)
        pool.register("b", random_bipartite(30, 30, 120, seed=1))
        pool.session("a")
        pool.session("b")               # 2x one > budget -> evict "a"
        assert pool.live_names() == ["b"]
        assert pool.resident_bytes() <= int(one * 1.5)

    def test_single_oversized_graph_still_serves(self):
        g = random_bipartite(30, 30, 120, seed=0)
        pool = SessionPool(max_bytes=1)          # absurdly small
        pool.register("huge", g)
        assert pool.session("huge").graph is g  # never evicts the keep

    def test_evicted_session_object_stays_usable(self):
        from repro.core.counts import BicliqueQuery

        pool, _ = make_pool(2, max_sessions=1)
        held = pool.session("g0")
        pool.session("g1")              # evicts g0 from the pool
        # a request mid-flight still holds the object; counting works
        assert held.count(BicliqueQuery(2, 2), backend="fast").count >= 0


class TestLifecycleAndConcurrency:
    def test_close_refuses_new_sessions(self):
        pool, _ = make_pool(1)
        pool.session("g0")
        pool.close()
        assert pool.live_names() == []
        with pytest.raises(ServiceError, match="closed"):
            pool.session("g0")

    def test_snapshot_is_json_shaped(self):
        import json

        pool, _ = make_pool(2, max_sessions=1)
        pool.session("g0")
        pool.session("g1")
        snap = json.loads(json.dumps(pool.snapshot()))
        assert snap["registered"] == 2
        assert snap["live"] == ["g1"]
        assert snap["evictions"] == 1

    def test_concurrent_session_calls_build_once(self):
        pool, _ = make_pool(1)
        barrier = threading.Barrier(8)
        got = []

        def hit():
            barrier.wait()
            for _ in range(50):
                got.append(pool.session("g0"))

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, got))) == 1
        assert pool.stats.builds == 1
