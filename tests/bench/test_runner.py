"""Tests for the experiment runner utilities."""

import pytest

from repro.bench.runner import (
    METHODS,
    headline_seconds,
    run_matrix,
    run_method,
    speedup,
)
from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count


class TestRunMethod:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_exact(self, small_random, method):
        q = BicliqueQuery(2, 2)
        res = run_method(method, small_random, q)
        assert res.count == brute_force_count(small_random, q)

    def test_unknown_method(self, small_random):
        with pytest.raises(ValueError):
            run_method("FOO", small_random, BicliqueQuery(2, 2))

    def test_methods_is_the_plan_registry(self):
        from repro.plan import method_names

        assert METHODS == method_names()

    def test_auto_matches_explicit(self, small_random):
        q = BicliqueQuery(2, 2)
        auto = run_method("auto", small_random, q)
        assert auto.count == run_method("GBC", small_random, q).count
        assert auto.algorithm in ("Basic", "BCL", "BCLP", "GBL", "GBC")


class TestHeadlineSeconds:
    def test_device_result_uses_device_seconds(self, small_random):
        res = run_method("GBC", small_random, BicliqueQuery(2, 2))
        assert headline_seconds(res) == res.device_seconds

    def test_cpu_result_uses_wall(self, small_random):
        res = run_method("BCL", small_random, BicliqueQuery(2, 2))
        assert headline_seconds(res) == res.wall_seconds


class TestRunMatrix:
    def test_matrix_shape_and_agreement(self, small_random, paper_graph):
        graphs = {"a": small_random, "b": paper_graph}
        queries = [BicliqueQuery(2, 2), BicliqueQuery(3, 2)]
        runs = run_matrix(graphs, queries, ["BCL", "GBC"])
        assert len(runs) == 2 * 2 * 2
        for r in runs:
            assert r.seconds >= 0

    def test_share_sessions_matches_unshared_counts(self, small_random,
                                                    paper_graph):
        graphs = {"a": small_random, "b": paper_graph}
        queries = [BicliqueQuery(2, 2), BicliqueQuery(2, 3)]
        methods = ["Basic", "BCL", "GBC"]
        shared = run_matrix(graphs, queries, methods, share_sessions=True)
        plain = run_matrix(graphs, queries, methods)
        assert [(r.method, r.dataset, r.result.count) for r in shared] == \
            [(r.method, r.dataset, r.result.count) for r in plain]

    def test_shared_prepare_timed_separately(self, small_random):
        """share_sessions=True must charge session preparation to
        MethodRun.prepare_seconds (once per graph), never to the first
        warm cell's measure_seconds."""
        graphs = {"g": small_random}
        queries = [BicliqueQuery(2, 2)]
        shared = run_matrix(graphs, queries, ["BCL", "GBC"],
                            share_sessions=True)
        assert len({r.prepare_seconds for r in shared}) == 1
        assert all(r.prepare_seconds > 0 for r in shared)
        plain = run_matrix(graphs, queries, ["BCL", "GBC"])
        assert all(r.prepare_seconds == 0.0 for r in plain)

    def test_disagreement_detected(self, small_random, monkeypatch):
        import repro.bench.runner as runner_mod

        real = runner_mod.run_method

        def broken(method, graph, query, spec=None, threads=16, **kwargs):
            res = real(method, graph, query, spec=spec, threads=threads,
                       **kwargs)
            if method == "GBC":
                res.count += 1
            return res

        monkeypatch.setattr(runner_mod, "run_method", broken)
        with pytest.raises(AssertionError):
            runner_mod.run_matrix({"g": small_random},
                                  [BicliqueQuery(2, 2)], ["BCL", "GBC"])


class TestSpeedup:
    def test_ratio(self, small_random):
        q = BicliqueQuery(2, 2)
        bcl = run_method("BCL", small_random, q)
        gbc = run_method("GBC", small_random, q)
        assert speedup(bcl, gbc) == pytest.approx(
            headline_seconds(bcl) / headline_seconds(gbc))
