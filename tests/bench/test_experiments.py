"""Tiny-scale runs of every paper experiment: structure and shape checks.

These are the same experiment functions the benchmark harness runs at
``bench`` scale; here they run at ``tiny`` scale so the whole paper matrix
is exercised (with its shape assertions) inside the unit-test suite.
"""

import numpy as np

from repro.bench.experiments import (
    experiment_fig1b,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.core.counts import BicliqueQuery

TINY_Q = BicliqueQuery(3, 3)


class TestFig1b:
    def test_intersections_dominate(self):
        res = experiment_fig1b(datasets=("YT", "GH"), scale="tiny",
                               query=TINY_Q)
        for name, share in res.data["intersection_share"].items():
            assert share > 0.5, name
        assert "Comp.S" in res.text


class TestTable2:
    def test_all_rows(self):
        res = experiment_table2(scale="tiny")
        assert len(res.data["stats"]) == 11
        assert "YT" in res.text


class TestFig7:
    def test_gbc_wins(self):
        res = experiment_fig7(datasets=("YT", "S1"),
                              queries=[BicliqueQuery(2, 3),
                                       BicliqueQuery(3, 2)],
                              scale="tiny")
        for method, ratios in res.data["speedups"].items():
            assert len(ratios) == 4
            assert np.mean(ratios) > 1.0, method


class TestFig8:
    def test_series_complete(self):
        res = experiment_fig8(datasets=("YT",), totals=[4, 6],
                              scale="tiny")
        series = res.data["series"]["YT"]
        assert all(len(v) == 2 for v in series.values())


class TestFig9:
    def test_ablations_cost(self):
        res = experiment_fig9(datasets=("YT", "S1"),
                              queries=[BicliqueQuery(3, 3)],
                              scale="tiny")
        for variant, per_ds in res.data["ratios"].items():
            for ds, ratios in per_ds.items():
                assert all(r > 0.8 for r in ratios), (variant, ds)


class TestTable3:
    def test_border_never_worse_than_none(self):
        res = experiment_table3(datasets=("YT", "S1"), query=TINY_Q,
                                scale="tiny", border_iterations=16)
        for ds, cells in res.data.items():
            assert cells["border"] <= cells["none"] * 1.2, ds


class TestTable4:
    def test_joint_beats_none(self):
        res = experiment_table4(datasets=("S2", "FR"), query=TINY_Q,
                                scale="tiny")
        for ds, cells in res.data.items():
            assert cells["joint"] <= cells["none"] * 1.05, ds


class TestFig10:
    def test_bcpar_beats_metis(self):
        res = experiment_fig10(dataset="OR", scale="tiny",
                               queries=[BicliqueQuery(2, 2)])
        cell = res.data["(2,2)"]
        assert cell["bcpar_throughput"] > 0
        assert cell["bcpar"].on_demand_transfer_words == 0
        assert cell["bcpar_throughput"] >= cell["metis_throughput"]


class TestTable5:
    def test_components_positive(self):
        res = experiment_table5(datasets=("YT",), query=TINY_Q,
                                scale="tiny", border_iterations=8)
        comp = res.data["YT"]
        assert comp["htb_transform"] > 0
        assert comp["reorder"] > 0
        assert comp["counting"] > 0


class TestFig11:
    def test_hybrid_wins_time_costs_memory(self):
        res = experiment_fig11(datasets=("YT", "S1"), query=TINY_Q,
                               scale="tiny")
        for ds, cell in res.data.items():
            assert cell["memory_ratio"] >= 1.0, ds
            assert cell["speedup"] >= 0.9, ds
