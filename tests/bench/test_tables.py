"""Tests for text rendering of tables and figures."""

from repro.bench.figures import render_breakdown_bars, render_series
from repro.bench.tables import format_ratio, format_seconds, render_table


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(float("inf")) == "INF"
        assert format_seconds(250.0) == "250s"
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0025) == "2.50ms"
        assert format_seconds(2.5e-6) == "2.50us"
        assert format_seconds(5e-10) == "0.5ns"

    def test_ratio(self):
        assert format_ratio(2.0) == "2.00x"
        assert format_ratio(float("inf")) == "inf"


class TestRenderTable:
    def test_alignment(self):
        out = render_table("T", ["a", "bb"], [["x", "y"], ["long-cell", "z"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        # all data rows equal width
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_contains_cells(self):
        out = render_table("T", ["col"], [["value42"]])
        assert "value42" in out


class TestRenderSeries:
    def test_rows_per_method(self):
        out = render_series("F", "x", [1, 2], {"m1": [0.1, 0.2],
                                               "m2": [1.0, 2.0]})
        assert "m1" in out and "m2" in out
        assert "100.00ms" in out


class TestRenderBreakdown:
    def test_bars(self):
        out = render_breakdown_bars("B", ["d1"], {"a": [0.6], "b": [0.4]})
        assert "a=60.0%" in out and "b=40.0%" in out
