"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

from repro.bench.report import EXPERIMENT_NOTES, build_experiments_md


class TestReport:
    def test_all_paper_artifacts_covered(self):
        stems = {n.artifact for n in EXPERIMENT_NOTES}
        # every §VII + appendix artifact is present
        for required in ("fig1b", "table2", "fig7", "fig8", "fig9",
                         "table3", "table4", "fig10", "table5", "fig11"):
            assert required in stems

    def test_missing_artifacts_noted(self, tmp_path):
        md = build_experiments_md(tmp_path)
        assert "not generated yet" in md
        assert "# EXPERIMENTS" in md

    def test_artifacts_embedded(self, tmp_path):
        (tmp_path / "fig1b.txt").write_text("FAKE-ARTIFACT-CONTENT\n")
        md = build_experiments_md(tmp_path)
        assert "FAKE-ARTIFACT-CONTENT" in md

    def test_divergences_present(self):
        md = build_experiments_md(Path("/nonexistent"))
        # the honest-divergence notes must be in the report
        assert "unipartite Gorder" in md
        assert "METIS binary is unavailable" in md
