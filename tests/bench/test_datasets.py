"""Tests for the dataset stand-in registry."""

import pytest

from repro.bench.datasets import PAPER_STATS, REGISTRY, list_datasets, load_dataset
from repro.graph.stats import compute_stats


class TestRegistry:
    def test_covers_table2(self):
        assert set(list_datasets()) == set(PAPER_STATS)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            load_dataset("YT", scale="galactic")

    @pytest.mark.parametrize("key", sorted(REGISTRY))
    def test_tiny_valid_and_deterministic(self, key):
        a = load_dataset(key, "tiny")
        b = load_dataset(key, "tiny")
        a.validate()
        assert a.num_edges == b.num_edges
        assert a.name == f"{key}-tiny"

    def test_scales_grow(self):
        for key in ("YT", "S1"):
            tiny = load_dataset(key, "tiny")
            bench = load_dataset(key, "bench")
            assert bench.num_edges > tiny.num_edges


class TestShapeFidelity:
    def test_layer_ratio_direction(self):
        """Stand-ins keep the paper's |U| vs |V| orientation."""
        for key, (pu, pv, *_rest) in PAPER_STATS.items():
            g = load_dataset(key, "tiny")
            assert (g.num_u >= g.num_v) == (pu >= pv), key

    def test_degree_contrast_direction(self):
        """Mean-degree ordering between layers matches the paper."""
        for key in ("YT", "BC", "SO", "FR"):
            pdu, pdv = PAPER_STATS[key][3], PAPER_STATS[key][4]
            s = compute_stats(load_dataset(key, "bench"))
            assert (s.mean_degree_u > s.mean_degree_v) == (pdu > pdv), key

    def test_fr_extreme_skew(self):
        """FR's defining feature: far denser U side than any other set."""
        fr = compute_stats(load_dataset("FR", "bench"))
        yt = compute_stats(load_dataset("YT", "bench"))
        assert fr.mean_degree_u > 5 * yt.mean_degree_u
