"""End-to-end integration tests across subsystems.

Each test chains several packages the way a real deployment would:
generator -> (core prune) -> reorder -> HTB -> device count -> verify,
or generator -> partition -> per-partition count -> aggregate.
"""

from math import comb


from repro import (
    BicliqueQuery,
    GBCOptions,
    bcl_count,
    gbc_count,
    planted_bicliques,
    power_law_bipartite,
)
from repro.core.pipeline import run_pipeline
from repro.core.verify import brute_force_count
from repro.graph.cores import prune_for_query
from repro.graph.io import loads, dumps
from repro.partition.runner import recommended_budget_words, run_bcpar


class TestFullPipelineClosedForm:
    def test_planted_counts_survive_every_stage(self):
        """Plants with known closed-form counts flow through pruning,
        Border reordering, HTB and the simulated device unchanged."""
        g = planted_bicliques(24, 24, [(5, 4), (4, 5)], noise_edges=60,
                              seed=9)
        q = BicliqueQuery(3, 3)
        expected = brute_force_count(g, q)
        # plants alone contribute a known floor
        floor = comb(5, 3) * comb(4, 3) + comb(4, 3) * comb(5, 3)
        assert expected >= floor

        pruned = prune_for_query(g, q.p, q.q).subgraph
        pipe = run_pipeline(pruned, q, reorder="border")
        assert pipe.result.count == expected

    def test_io_roundtrip_then_count(self, tmp_path):
        g = power_law_bipartite(60, 50, 280, seed=10)
        q = BicliqueQuery(2, 3)
        text = dumps(g, konect=True)
        back = loads(text)
        assert gbc_count(back, q).count == bcl_count(g, q).count


class TestPartitionedEndToEnd:
    def test_bcpar_total_equals_monolithic(self):
        g = power_law_bipartite(90, 70, 420, seed=11)
        q = BicliqueQuery(3, 2)
        budget = recommended_budget_words(g, q.q, fraction=0.3)
        report, pset = run_bcpar(g, q, budget_words=budget)
        assert report.total_count == gbc_count(g, q).count
        assert report.num_partitions == pset.num_partitions


class TestDeviceConfigurations:
    def test_scaled_device_same_counts(self):
        from repro.bench.experiments import scaled_device
        g = power_law_bipartite(70, 50, 300, seed=12)
        q = BicliqueQuery(3, 3)
        full = gbc_count(g, q)
        scaled = gbc_count(g, q, spec=scaled_device())
        assert full.count == scaled.count
        # fewer blocks -> each block does more work -> larger makespan
        assert scaled.makespan_cycles >= full.makespan_cycles

    def test_all_option_combinations_agree(self):
        g = power_law_bipartite(50, 40, 220, seed=13)
        q = BicliqueQuery(2, 3)
        expected = brute_force_count(g, q)
        for hybrid in (True, False):
            for use_htb in (True, False):
                for balance in ("none", "pre", "runtime", "joint"):
                    opts = GBCOptions(hybrid=hybrid, use_htb=use_htb,
                                      balance=balance)
                    assert gbc_count(g, q, options=opts).count == expected, \
                        (hybrid, use_htb, balance)
