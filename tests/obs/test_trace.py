"""The span API: off-by-default, nesting, tallies, export, summary."""

import threading

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import (
    NULL_SPAN,
    current_span,
    disable_tracing,
    enable_tracing,
    event,
    load_records,
    render_summary,
    span,
    summarize,
    tally_kernel,
    tracing,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing globally off."""
    disable_tracing()
    yield
    disable_tracing()


class TestDisabled:
    def test_off_by_default(self):
        assert not tracing_enabled()

    def test_span_is_the_null_singleton(self):
        with span("x", a=1) as sp:
            assert sp is NULL_SPAN
        # the null span absorbs the whole surface without recording
        sp.annotate(b=2)
        sp.tally("merge", 3)
        event("nothing")
        tally_kernel("merge")
        assert current_span() is None

    def test_nothing_recorded_while_disabled(self):
        rec = enable_tracing()
        disable_tracing()
        with span("x"):
            pass
        assert len(rec) == 0


class TestRecording:
    def test_span_records_name_duration_attrs(self):
        rec = enable_tracing()
        with span("work", phase="test") as sp:
            sp.annotate(items=3)
        (r,) = rec.records
        assert r["name"] == "work"
        assert r["kind"] == "span"
        assert r["dur_ms"] >= 0.0
        assert r["attrs"] == {"phase": "test", "items": 3}
        assert r["parent_id"] is None

    def test_nesting_sets_parent_id(self):
        rec = enable_tracing()
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner"):
                pass
        inner, outer_rec = rec.records
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer_rec["span_id"]

    def test_exception_annotates_error_and_propagates(self):
        rec = enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        (r,) = rec.records
        assert r["attrs"]["error"] == "ValueError"

    def test_event_is_a_zero_duration_record(self):
        rec = enable_tracing()
        with span("outer") as outer:
            event("happened", n=1)
        ev = rec.records[0]
        assert ev["kind"] == "event"
        assert ev["name"] == "happened"
        assert ev["dur_ms"] == 0.0
        assert ev["parent_id"] == outer.span_id
        assert ev["attrs"] == {"n": 1}

    def test_tally_kernel_aggregates_into_nearest_span(self):
        rec = enable_tracing()
        with span("batch"):
            tally_kernel("merge_many", calls=2, items=10, bytes_touched=80)
            tally_kernel("merge_many", items=5)
            tally_kernel("intersect_many")
        (r,) = rec.records
        assert r["attrs"]["kernel_calls"] == 4
        assert r["attrs"]["kernel_items"] == 15
        assert r["attrs"]["kernel_bytes"] == 80
        assert r["attrs"]["calls.merge_many"] == 3
        assert r["attrs"]["calls.intersect_many"] == 1

    def test_threads_have_independent_ambient_stacks(self):
        rec = enable_tracing()
        seen = {}

        def worker():
            seen["ambient"] = current_span()
            with span("in-thread"):
                pass

        with span("main-side"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the worker never saw the main thread's open span as a parent
        assert seen["ambient"] is None
        by_name = {r["name"]: r for r in rec.records}
        assert by_name["in-thread"]["parent_id"] is None

    def test_tracing_context_manager_restores_state(self):
        with tracing() as rec:
            assert tracing_enabled()
            with span("inside"):
                pass
        assert not tracing_enabled()
        assert rec.names() == {"inside"}


class TestExport:
    def test_dump_and_load_roundtrip(self, tmp_path):
        rec = enable_tracing()
        with span("a"):
            with span("b"):
                event("e")
        disable_tracing()
        path = tmp_path / "t.jsonl"
        assert rec.dump(path) == 3
        loaded = load_records(path)
        assert loaded == rec.records

    def test_summarize_builds_a_self_time_tree(self):
        rec = enable_tracing()
        for _ in range(2):
            with span("outer"):
                with span("inner"):
                    pass
                event("tick")
        rows = summarize(rec.records)
        by_path = {r["path"]: r for r in rows}
        assert by_path[("outer",)]["count"] == 2
        assert by_path[("outer", "inner")]["count"] == 2
        assert by_path[("outer", "inner")]["depth"] == 1
        assert by_path[("outer", "tick")]["kind"] == "event"
        outer = by_path[("outer",)]
        assert outer["self_ms"] <= outer["total_ms"]

    def test_render_summary_empty_and_nonempty(self):
        assert render_summary([]) == "(no spans recorded)"
        rec = enable_tracing()
        with span("thing"):
            pass
        text = render_summary(summarize(rec.records))
        assert "thing" in text
        assert "total ms" in text


class TestOverheadShape:
    def test_disabled_span_never_touches_the_ambient_stack(self):
        # not a timing assertion (CI noise owns the <2% bar in
        # benchmarks/) — just that the disabled path pushes nothing
        assert trace_mod._recorder is None
        with span("x"):
            assert trace_mod._ambient.stack == []
