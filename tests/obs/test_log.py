"""Structured logging: hierarchy, verbosity wiring, idempotency."""

import io
import logging

import pytest

from repro.obs.log import configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    configure_logging(0)


def _managed_handlers():
    root = logging.getLogger("repro")
    return [h for h in root.handlers
            if getattr(h, "_repro_managed", False)]


class TestGetLogger:
    def test_names_are_rooted_under_repro(self):
        assert get_logger("repro.service.pool").name == "repro.service.pool"
        assert get_logger("service.pool").name == "repro.service.pool"
        assert get_logger("repro").name == "repro"

    def test_silent_by_default(self):
        # library rule: a NullHandler on the root, nothing on stderr
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)
        assert not _managed_handlers()


class TestConfigure:
    def test_verbosity_levels(self):
        configure_logging(1)
        assert logging.getLogger("repro").level == logging.INFO
        configure_logging(2)
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_idempotent_reconfigure_keeps_one_handler(self):
        configure_logging(1)
        configure_logging(2)
        configure_logging(1)
        assert len(_managed_handlers()) == 1

    def test_zero_removes_the_managed_handler(self):
        configure_logging(1)
        assert _managed_handlers()
        configure_logging(0)
        assert not _managed_handlers()

    def test_messages_reach_the_configured_stream(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("repro.test").info("pool evicted %r", "YT")
        out = stream.getvalue()
        assert "pool evicted 'YT'" in out
        assert "repro.test" in out

    def test_debug_suppressed_at_info_verbosity(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("repro.test").debug("noise")
        assert stream.getvalue() == ""
