"""Cross-layer integration: one serve run traces all four seams, the
pool's shared ledger learns from scheduled executions, and tracing
never changes counts."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.obs import CostLedger, tracing
from repro.obs.trace import disable_tracing
from repro.query import GraphSession
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.service.pool import SessionPool
from repro.service.scheduler import Scheduler

GRAPHS = {
    "a": random_bipartite(30, 20, 120, seed=2),
    "b": power_law_bipartite(40, 30, 160, seed=3),
}


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


def make_pool(**kwargs) -> SessionPool:
    pool = SessionPool(**kwargs)
    for name, graph in GRAPHS.items():
        pool.register(name, graph)
    return pool


class TestFourSeams:
    def test_one_serve_run_touches_every_seam(self):
        with tracing() as rec:
            with Scheduler(make_pool(), batch_window=0.0,
                           method="auto") as sched:
                futures = [sched.submit(name, p, q)
                           for name in ("a", "b")
                           for p, q in ((2, 2), (2, 3))]
                counts = [f.result(timeout=60).count for f in futures]
        assert all(c > 0 for c in counts)
        names = rec.names()
        # planner seam
        assert "plan.rank" in names and "plan.execute" in names
        # prepared-state seam (auto plans build at least one structure)
        assert any(n.startswith("prepare.") for n in names)
        # kernel seam
        assert "kernel.batch" in names
        # scheduler lifecycle seam, with stable per-request ids
        assert {"serve.queued", "serve.batch",
                "serve.completed"} <= names
        queued = {r["attrs"]["rid"] for r in rec.records
                  if r["name"] == "serve.queued"}
        completed = {r["attrs"]["rid"] for r in rec.records
                     if r["name"] == "serve.completed"}
        assert queued == completed == {1, 2, 3, 4}

    def test_gbc_batches_tally_kernel_calls_onto_the_span(self):
        # GBC routes every frontier through the KernelBackend batch
        # entry points, so its kernel.batch span carries call counters
        with tracing() as rec:
            with Scheduler(make_pool(), batch_window=0.0,
                           method="GBC") as sched:
                sched.count("a", 3, 3)
        (span_rec,) = [r for r in rec.records
                       if r["name"] == "kernel.batch"]
        attrs = span_rec["attrs"]
        assert attrs["kernel_calls"] > 0
        assert attrs["kernel_items"] > 0
        assert any(k.startswith("calls.") for k in attrs)

    def test_served_counts_identical_with_and_without_tracing(self):
        with Scheduler(make_pool(), batch_window=0.0) as sched:
            baseline = sched.count("a", 2, 2).count
        with tracing():
            with Scheduler(make_pool(), batch_window=0.0) as sched:
                traced = sched.count("a", 2, 2).count
        direct = gbc_count(GRAPHS["a"], BicliqueQuery(2, 2),
                           backend="fast").count
        assert baseline == traced == direct


class TestPoolLedger:
    def test_pooled_sessions_share_the_pool_ledger(self):
        ledger = CostLedger()
        pool = make_pool(ledger=ledger)
        with Scheduler(pool, batch_window=0.0, method="auto") as sched:
            sched.count("a", 2, 2)
            sched.count("b", 2, 3)
        assert len(ledger) >= 2
        # auto plans carry predictions, so cells learn ratios
        snap = ledger.snapshot()
        assert any(c["ratio"] is not None
                   for c in snap["cells"].values())

    def test_session_count_records_into_its_ledger(self):
        ledger = CostLedger()
        graph = GRAPHS["a"]
        session = GraphSession(graph, ledger=ledger)
        res = session.count(BicliqueQuery(2, 2), method="auto",
                            backend="fast")
        assert len(ledger) == 1
        cell = next(iter(ledger.snapshot()["cells"].values()))
        assert cell["observations"] == 1
        assert res.count == gbc_count(graph, BicliqueQuery(2, 2),
                                      backend="fast").count
