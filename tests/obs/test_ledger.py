"""CostLedger: EWMA cells, drift resets, calibration, persistence."""

import pytest

from repro.obs.ledger import CostLedger, LedgerCell


class TestRecording:
    def test_first_observation_seeds_the_cell(self):
        led = CostLedger()
        cell = led.record("fp", 3, 3, "GBC", "fast", 0.5,
                          predicted_seconds=1.0)
        assert isinstance(cell, LedgerCell)
        assert cell.observed_seconds == 0.5
        assert cell.ratio == 0.5
        assert cell.observations == 1

    def test_ewma_converges_toward_recent_observations(self):
        led = CostLedger(alpha=0.5)
        led.record("fp", 3, 3, "GBC", "fast", 1.0)
        cell = led.record("fp", 3, 3, "GBC", "fast", 3.0)
        assert cell.observed_seconds == pytest.approx(2.0)
        assert cell.observations == 2

    def test_cells_are_keyed_per_shape_method_backend(self):
        led = CostLedger()
        led.record("fp", 3, 3, "GBC", "fast", 1.0)
        led.record("fp", 3, 4, "GBC", "fast", 2.0)
        led.record("fp", 3, 3, "BCL", "fast", 3.0)
        led.record("fp", 3, 3, "GBC", "native", 4.0)
        led.record("other", 3, 3, "GBC", "fast", 5.0)
        assert len(led) == 5
        assert led.lookup("fp", 3, 3, "GBC", "fast").observed_seconds == 1.0

    def test_no_prediction_keeps_ratio_unset(self):
        led = CostLedger()
        cell = led.record("fp", 2, 2, "Basic", "fast", 0.1)
        assert cell.ratio is None
        assert led.calibrated("fp", 2, 2, "Basic", "fast", 1.0) is None

    def test_drift_outside_the_band_resets_the_cell(self):
        led = CostLedger(drift_band=4.0)
        led.record("fp", 3, 3, "GBC", "fast", 1.0, predicted_seconds=2.0)
        # observed/predicted jumps from 0.5 to 25x — the graph changed
        # out from under the fingerprint's statistics
        cell = led.record("fp", 3, 3, "GBC", "fast", 25.0,
                          predicted_seconds=2.0)
        assert led.drift_resets == 1
        assert cell.observations == 1          # fresh cell
        assert cell.observed_seconds == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostLedger(alpha=0.0)
        with pytest.raises(ValueError):
            CostLedger(alpha=1.5)
        with pytest.raises(ValueError):
            CostLedger(drift_band=1.0)


class TestCalibration:
    def test_calibrated_scales_prediction_by_observed_ratio(self):
        led = CostLedger()
        led.record("fp", 3, 3, "GBC", "fast", 0.5, predicted_seconds=1.0)
        assert led.calibrated("fp", 3, 3, "GBC", "fast", 2.0) \
            == pytest.approx(1.0)

    def test_unknown_cell_calibrates_to_none(self):
        led = CostLedger()
        assert led.calibrated("fp", 3, 3, "GBC", "fast", 2.0) is None

    def test_forget_drops_one_fingerprint_only(self):
        led = CostLedger()
        led.record("a", 2, 2, "GBC", "fast", 1.0)
        led.record("a", 3, 3, "GBC", "fast", 1.0)
        led.record("b", 2, 2, "GBC", "fast", 1.0)
        assert led.forget("a") == 2
        assert len(led) == 1
        assert led.lookup("b", 2, 2, "GBC", "fast") is not None


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        led = CostLedger(alpha=0.4, drift_band=3.0)
        led.record("fp", 3, 3, "GBC", "fast", 0.5, predicted_seconds=1.0)
        led.record("fp", 2, 2, "BCL", "native", 0.25)
        path = tmp_path / "ledger.json"
        assert led.save(path) == 2
        back = CostLedger.load(path)
        assert back.alpha == 0.4
        assert back.drift_band == 3.0
        assert len(back) == 2
        cell = back.lookup("fp", 3, 3, "GBC", "fast")
        assert cell.observed_seconds == 0.5
        assert cell.ratio == 0.5

    def test_load_rejects_unknown_format_version(self, tmp_path):
        import json
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"version": 999, "cells": {}}))
        with pytest.raises(ValueError, match="version"):
            CostLedger.load(path)
