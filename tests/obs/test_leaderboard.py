"""Leaderboard assembly: schema gate, cell extraction, waterfall flags."""

import json

import pytest

from repro.obs.leaderboard import (
    WIN_BAND,
    build_leaderboard,
    collect_artifacts,
    extract_cells,
    render_markdown,
    write_leaderboard,
)
from repro.obs.schema import SchemaError, validate_artifact


def native_artifact(speedup: float) -> dict:
    return {
        "kind": "native_speedup",
        "generated": "2026-08-08T00:00:00",
        "datasets": [{
            "dataset": "YT",
            "query": [3, 3],
            "methods": {"GBC": {"speedup": speedup}},
        }],
    }


def serve_artifact(qps: float) -> dict:
    return {
        "kind": "serve_bench",
        "spec": {},
        "scheduler": {},
        "served": {"completed": 10, "throughput_qps": qps},
        "telemetry": {},
        "naive": {"throughput_qps": 100.0},
        "speedup_vs_naive": qps / 100.0,
    }


class TestSchemaGate:
    def test_valid_artifact_returns_its_kind(self):
        assert validate_artifact(native_artifact(2.0)) == "native_speedup"

    def test_missing_key_is_a_schema_error(self):
        bad = native_artifact(2.0)
        del bad["datasets"]
        with pytest.raises(SchemaError, match="datasets"):
            validate_artifact(bad, name="BENCH_native.json")

    def test_wrong_type_is_a_schema_error(self):
        bad = serve_artifact(200.0)
        bad["served"]["completed"] = "ten"
        with pytest.raises(SchemaError, match="completed"):
            validate_artifact(bad)

    def test_unknown_kind_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="kind"):
            validate_artifact({"kind": "mystery"})

    def test_collect_validates_and_skips_the_leaderboard_itself(
            self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0)))
        (tmp_path / "BENCH_leaderboard.json").write_text(
            json.dumps({"kind": "leaderboard"}))
        (tmp_path / "notes.txt").write_text("ignored")
        arts = collect_artifacts(tmp_path)
        assert [name for name, _ in arts] == ["BENCH_native.json"]

    def test_collect_surfaces_schema_violations(self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps({"kind": "native_speedup"}))
        with pytest.raises(SchemaError, match="BENCH_native.json"):
            collect_artifacts(tmp_path)


class TestExtraction:
    def test_native_cells_carry_direction_and_keys(self):
        cells = extract_cells("BENCH_native.json", native_artifact(2.5))
        (cell,) = cells
        assert cell["cell"] == "YT|3x3|GBC"
        assert cell["metric"] == "speedup"
        assert cell["value"] == 2.5
        assert cell["direction"] == "higher"

    def test_serve_cells(self):
        cells = extract_cells("BENCH_serve.json", serve_artifact(250.0))
        metrics = {c["metric"]: c for c in cells}
        assert metrics["throughput_qps"]["value"] == 250.0
        assert metrics["speedup_vs_naive"]["value"] == 2.5
        assert all(c["direction"] == "higher" for c in cells)


class TestWaterfall:
    def test_first_generation_is_all_new(self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0)))
        board = build_leaderboard(tmp_path)
        assert board["kind"] == "leaderboard"
        assert board["summary"] == {"win": 0, "regression": 0,
                                    "flat": 0, "new": 1}
        (cell,) = board["cells"]
        assert cell["flag"] == "new"
        assert cell["previous"] is None

    def test_second_generation_flags_win_regression_flat(self, tmp_path):
        previous = build_leaderboard_from(tmp_path, 2.0, 200.0)
        # next generation: native clearly faster, serving clearly slower
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(3.0)))
        (tmp_path / "BENCH_serve.json").write_text(
            json.dumps(serve_artifact(150.0)))
        board = build_leaderboard(tmp_path, previous=previous)
        flags = {(c["artifact"], c["metric"]): c["flag"]
                 for c in board["cells"]}
        assert flags[("BENCH_native.json", "speedup")] == "win"
        assert flags[("BENCH_serve.json", "throughput_qps")] == "regression"

    def test_within_band_change_is_flat(self, tmp_path):
        previous = build_leaderboard_from(tmp_path, 2.0, 200.0)
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0 * (WIN_BAND - 0.01))))
        board = build_leaderboard(tmp_path, previous=previous)
        flags = {c["metric"]: c["flag"] for c in board["cells"]
                 if c["artifact"] == "BENCH_native.json"}
        assert flags["speedup"] == "flat"

    def test_previous_defaults_to_the_existing_leaderboard_file(
            self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0)))
        write_leaderboard(tmp_path)
        board = build_leaderboard(tmp_path)     # reads its own output
        assert all(c["flag"] == "flat" for c in board["cells"])


def build_leaderboard_from(tmp_path, speedup: float, qps: float) -> dict:
    (tmp_path / "BENCH_native.json").write_text(
        json.dumps(native_artifact(speedup)))
    (tmp_path / "BENCH_serve.json").write_text(
        json.dumps(serve_artifact(qps)))
    return build_leaderboard(tmp_path)


class TestOutputs:
    def test_write_leaderboard_produces_json_and_markdown(self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0)))
        json_path, md_path, board = write_leaderboard(tmp_path)
        assert json.loads(json_path.read_text())["kind"] == "leaderboard"
        md = md_path.read_text()
        assert "# BENCH leaderboard" in md
        assert "★ new" in md
        # the leaderboard artifact itself passes the schema gate
        assert validate_artifact(board) == "leaderboard"

    def test_markdown_escapes_cell_separator_pipes(self, tmp_path):
        (tmp_path / "BENCH_native.json").write_text(
            json.dumps(native_artifact(2.0)))
        _, md_path, _ = write_leaderboard(tmp_path)
        assert "YT\\|3x3\\|GBC" in md_path.read_text()

    def test_real_repo_artifacts_assemble(self):
        # locally-regenerated BENCH_* artifacts must stay schema-clean
        # and produce a non-trivial leaderboard.  The artifacts dir is
        # generated output (gitignored), so a fresh checkout skips; any
        # benchmark run repopulates it
        import pathlib
        arts_dir = pathlib.Path(__file__).resolve().parents[2] \
            / "benchmarks" / "artifacts"
        arts = collect_artifacts(arts_dir) if arts_dir.is_dir() else []
        if len(arts) < 3:
            pytest.skip(f"needs >= 3 regenerated BENCH_* artifacts in "
                        f"{arts_dir}, found {len(arts)} (run the "
                        f"benchmark suite to repopulate)")
        board = build_leaderboard(arts_dir, previous=None)
        assert len(board["cells"]) >= 10
        assert render_markdown(board).count("|") > 50
