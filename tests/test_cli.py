"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import random_bipartite
from repro.graph.io import write_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_args(self):
        args = build_parser().parse_args(
            ["count", "--dataset", "YT", "-p", "3", "-q", "2"])
        assert args.command == "count"
        assert args.p == 3 and args.q == 2
        assert args.scale == "tiny"

    def test_graph_and_dataset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["count", "--graph", "x", "--dataset", "YT",
                 "-p", "1", "-q", "1"])

    def test_batch_requires_queries(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--dataset", "YT"])

    def test_batch_args(self):
        args = build_parser().parse_args(
            ["batch", "--dataset", "YT", "--queries", "3x3,3x4",
             "--backend", "fast"])
        assert args.command == "batch"
        assert args.queries == "3x3,3x4"
        # None defers the GBC default to the handler, which upgrades it
        # to "auto" when --accuracy asks for a non-exact tier
        assert args.method is None
        assert args.accuracy == "exact"


class TestCommands:
    def test_count_dataset(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2"]) == 0
        out = capsys.readouterr().out
        assert "bicliques:" in out
        assert "memory transactions" in out

    def test_count_cpu_method(self, capsys):
        assert main(["count", "--dataset", "S1", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--method", "BCL"]) == 0
        out = capsys.readouterr().out
        assert "(wall)" in out

    def test_count_from_file(self, tmp_path, capsys):
        g = random_bipartite(10, 10, 40, seed=0)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert main(["count", "--graph", str(path),
                     "-p", "1", "-q", "1"]) == 0
        assert f"bicliques: {g.num_edges}" in capsys.readouterr().out

    def test_batch(self, capsys):
        assert main(["batch", "--dataset", "YT", "--scale", "tiny",
                     "--queries", "2x2,2x3", "--backend", "fast"]) == 0
        out = capsys.readouterr().out
        assert "(2,2)" in out and "(2,3)" in out
        assert "shared precomputation: 1 wedge pass(es)" in out
        assert "result cache: 0 hit(s), 2 miss(es)" in out

    def test_batch_repeated_query_hits_cache(self, capsys):
        assert main(["batch", "--dataset", "S1", "--scale", "tiny",
                     "--queries", "2x2,2x2", "--backend", "fast"]) == 0
        assert "result cache: 1 hit(s), 1 miss(es)" \
            in capsys.readouterr().out

    def test_count_auto(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--method", "auto"]) == 0
        out = capsys.readouterr().out
        assert "plan: auto ->" in out
        assert "bicliques:" in out

    def test_batch_auto(self, capsys):
        assert main(["batch", "--dataset", "S1", "--scale", "tiny",
                     "--queries", "2x2,2x3", "--method", "auto"]) == 0
        out = capsys.readouterr().out
        assert "(2,2)" in out and "(2,3)" in out

    def test_plan_explain(self, capsys):
        assert main(["plan", "explain", "--dataset", "YT",
                     "--scale", "tiny", "-p", "2", "-q", "2"]) == 0
        out = capsys.readouterr().out
        assert "<- chosen" in out
        assert "candidate plan(s), cheapest first" in out
        assert "promising roots" in out
        for method in ("Basic", "BCL", "BCLP", "GBL", "GBC"):
            assert method in out

    def test_plan_explain_measure(self, capsys):
        assert main(["plan", "explain", "--dataset", "S1",
                     "--scale", "tiny", "-p", "2", "-q", "2",
                     "--backend", "fast", "--measure"]) == 0
        assert "measured" in capsys.readouterr().out

    def test_plan_explain_deterministic(self, capsys):
        args = ["plan", "explain", "--dataset", "GH", "--scale", "tiny",
                "-p", "2", "-q", "2", "--seed", "3"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_batch_workers_with_sim_backend_errors(self, capsys):
        assert main(["batch", "--dataset", "YT", "--scale", "tiny",
                     "--queries", "2x2", "--backend", "sim",
                     "--workers", "2"]) == 2
        assert "error" in capsys.readouterr().err

    def test_enumerate(self, capsys):
        assert main(["enumerate", "--dataset", "S1", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("L=") <= 3

    def test_estimate(self, capsys):
        assert main(["estimate", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--samples", "8"]) == 0
        assert "estimate:" in capsys.readouterr().out

    def test_estimate_routes_through_the_plan_layer(self, capsys):
        """``estimate`` dispatches the registered "approx" method via
        explicit_plan/execute_plan (the gap this command used to have:
        it called the estimator directly and ignored --backend)."""
        assert main(["estimate", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--samples", "8",
                     "--backend", "native"]) == 0
        out = capsys.readouterr().out
        assert "backend: native" in out
        assert "root trees" in out

    def test_estimate_seed_reproducible(self, capsys):
        argv = ["estimate", "--dataset", "YT", "--scale", "tiny",
                "-p", "3", "-q", "3", "--samples", "8", "--seed", "4"]

        def estimate_line():
            assert main(argv) == 0
            out = capsys.readouterr().out
            return next(ln for ln in out.splitlines()
                        if ln.startswith("estimate:"))

        # wall time varies run to run; the estimate may not
        assert estimate_line() == estimate_line()

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("YT", "OR", "S2"):
            assert key in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table2", "--scale", "tiny"]) == 0
        assert "Table II" in capsys.readouterr().out


class TestAccuracyTier:
    """--accuracy / --deadline: the sampling tier through the CLI."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["count", "--dataset", "YT", "-p", "2", "-q", "2"])
        assert args.accuracy == "exact"
        assert args.deadline is None

    def test_count_accuracy_approx(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "3", "-q", "3", "--accuracy", "approx"]) == 0
        out = capsys.readouterr().out
        assert "plan: auto ->" in out
        assert "estimate:" in out and "95% CI" in out
        assert "seed" in out

    def test_count_auto_with_tight_deadline_samples(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "3", "-q", "3", "--accuracy", "auto",
                     "--deadline", "0.000001"]) == 0
        out = capsys.readouterr().out
        assert "method: approx" in out
        assert "estimate:" in out

    def test_count_exact_deadline_infeasible_errors(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "3", "-q", "3", "--accuracy", "exact",
                     "--deadline", "0.000000001"]) == 1
        err = capsys.readouterr().err
        assert "deadline" in err
        assert "--accuracy auto" in err

    def test_explicit_method_with_approx_tier_is_usage_error(self, capsys):
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--method", "GBC",
                     "--accuracy", "approx"]) == 2
        assert "planner choose" in capsys.readouterr().err

    def test_batch_accuracy_approx(self, capsys):
        assert main(["batch", "--dataset", "YT", "--scale", "tiny",
                     "--queries", "2x2,3x3", "--accuracy", "approx"]) == 0
        out = capsys.readouterr().out
        assert "(2,2)" in out and "(3,3)" in out
        assert "+-" in out          # every approx cell carries its ci95

    def test_plan_explain_error_column_and_approx_alternative(self, capsys):
        assert main(["plan", "explain", "--dataset", "YT",
                     "--scale", "tiny", "-p", "2", "-q", "2"]) == 0
        out = capsys.readouterr().out
        assert "error" in out                 # the new column
        assert "exact" in out                 # exact rows say so
        assert "approx tier:" in out          # the what-if footer
        assert "-sample estimate predicted" in out

    def test_plan_explain_accuracy_approx_ranks_the_sampling_tier(
            self, capsys):
        assert main(["plan", "explain", "--dataset", "YT",
                     "--scale", "tiny", "-p", "2", "-q", "2",
                     "--accuracy", "approx"]) == 0
        out = capsys.readouterr().out
        assert "approx" in out
        assert "~" in out           # relative-error cells, not "exact"
        assert "GBC" not in out     # exact methods are not candidates

    def test_serve_bench_accuracy_approx(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_serve.json"
        assert main(["serve-bench", "--graphs", "YT", "--scale", "tiny",
                     "--queries", "20", "--clients", "2",
                     "--accuracy", "approx", "--naive-limit", "5",
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "within its reported 95% CI" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["mismatches"] == []
        assert artifact["spec"]["accuracy"] == "approx"
        assert artifact["scheduler"]["accuracy"] == "approx"
        assert artifact["served"]["approx_served"] == \
            artifact["served"]["completed"] == 20


class TestObservability:
    def test_count_trace_writes_jsonl_and_summarize_renders(
            self, tmp_path, capsys):
        import json

        path = tmp_path / "t.jsonl"
        assert main(["count", "--dataset", "YT", "--scale", "tiny",
                     "-p", "2", "-q", "2", "--method", "auto",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        records = [json.loads(line) for line in path.read_text().split("\n")
                   if line]
        names = {r["name"] for r in records}
        assert "plan.rank" in names and "plan.execute" in names
        assert "kernel.batch" in names
        # tracing is switched back off after the run
        from repro.obs.trace import tracing_enabled
        assert not tracing_enabled()

        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "plan.execute" in out
        assert "self ms" in out

    def test_trace_summarize_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace", "summarize",
                     str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_plan_explain_ledger_measure_then_calibrated_rerun(
            self, tmp_path, capsys):
        ledger = tmp_path / "costs.json"
        argv = ["plan", "explain", "--dataset", "YT", "--scale", "tiny",
                "-p", "2", "-q", "2", "--ledger", str(ledger)]
        assert main(argv + ["--measure"]) == 0
        first = capsys.readouterr().out
        assert "observed" in first and "calibrated" in first
        assert "ledger:" in first
        assert ledger.exists()
        # second invocation loads the measurements back and calibrates
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "ledger-calibrated" in second

    def test_leaderboard_command(self, tmp_path, capsys):
        import json

        artifact = {
            "kind": "native_speedup",
            "generated": "2026-08-08T00:00:00",
            "datasets": [{"dataset": "YT", "query": [3, 3],
                          "methods": {"GBC": {"speedup": 2.0}}}],
        }
        (tmp_path / "BENCH_native.json").write_text(json.dumps(artifact))
        assert main(["leaderboard", "--artifacts", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 cell(s) from 1 artifact(s)" in out
        assert (tmp_path / "BENCH_leaderboard.json").exists()
        assert (tmp_path / "BENCH_leaderboard.md").exists()

    def test_leaderboard_schema_violation_errors(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_native.json").write_text(
            json.dumps({"kind": "native_speedup"}))
        assert main(["leaderboard", "--artifacts", str(tmp_path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_verbose_flag_configures_then_resets_logging(self, capsys):
        import logging

        from repro.obs.log import configure_logging
        try:
            assert main(["-v", "datasets"]) == 0
            root = logging.getLogger("repro")
            assert root.level == logging.INFO
            assert any(getattr(h, "_repro_managed", False)
                       for h in root.handlers)
        finally:
            configure_logging(0)


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """``python -m repro`` runs the CLI (repro/__main__.py)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        done = subprocess.run(
            [sys.executable, "-m", "repro", "count", "--dataset", "S1",
             "--scale", "tiny", "-p", "2", "-q", "2", "--backend",
             "native"],
            capture_output=True, text=True, env=env, timeout=120)
        assert done.returncode == 0, done.stderr
        assert "bicliques:" in done.stdout

    def test_python_dash_m_repro_bad_args_exit_code(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        done = subprocess.run([sys.executable, "-m", "repro"],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert done.returncode != 0
