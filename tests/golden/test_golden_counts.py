"""Golden-count regression harness.

Five algorithms x four kernel backends x three graph shapes, each
asserted against the pinned count in ``golden_counts.json``.  The shapes
stress different engine paths:

* **power-law** — skewed degrees, the head-heavy regime of the paper's
  real datasets (deep recursion on a few heavy roots);
* **dense-bipartite** — uniform ~50% density, long candidate sets and
  wide intersections;
* **star-heavy** — a few hub vertices adjacent to most of V over sparse
  noise, the extreme-imbalance case load balancing exists for.

The parallel backend runs with two real worker processes so the sharded
merge path itself is under golden protection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import run_method
from repro.core.counts import BicliqueQuery
from repro.engine import ParallelBackend
from repro.graph.builders import from_edges
from repro.graph.generators import power_law_bipartite, random_bipartite

ALGORITHMS = ("Basic", "GBC", "GBL", "BCL", "BCLP")
BACKENDS = ("sim", "fast", "par", "native")


def _star_heavy():
    """Three hubs covering most of V, plus deterministic sparse noise."""
    rng = np.random.default_rng(23)
    num_u, num_v = 40, 30
    edges = {(hub, v) for hub in (0, 1, 2)
             for v in range(0, num_v, hub + 1)}
    while len(edges) < 190:
        edges.add((int(rng.integers(3, num_u)), int(rng.integers(0, num_v))))
    return from_edges(num_u, num_v, sorted(edges), name="star-heavy")


GRAPHS = {
    "power-law": (lambda: power_law_bipartite(60, 50, 320, seed=11,
                                              name="golden-pl"),
                  BicliqueQuery(3, 2)),
    "dense-bipartite": (lambda: random_bipartite(24, 20, 240, seed=7,
                                                 name="golden-dense"),
                        BicliqueQuery(3, 3)),
    "star-heavy": (_star_heavy, BicliqueQuery(2, 3)),
}


@pytest.fixture(scope="module")
def graphs():
    return {name: (build(), query)
            for name, (build, query) in GRAPHS.items()}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("shape", sorted(GRAPHS))
def test_golden_count(golden, graphs, shape, algorithm, backend):
    graph, query = graphs[shape]
    engine = ParallelBackend(workers=2) if backend == "par" else backend
    result = run_method(algorithm, graph, query, backend=engine)
    assert result.backend == backend
    golden.check(f"{shape}/{query}", result.count,
                 source=f"{algorithm}[{backend}]")
