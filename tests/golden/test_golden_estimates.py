"""Golden sampling-tier regression harness.

The exact counters have ``golden_counts.json``; the ``"approx"`` tier
gets the same protection here.  For a fixed seed the Horvitz-Thompson
estimate is a pure function of the graph, the query and the sample
budget — so ``estimate``, ``std_error`` and ``samples`` are pinned to
the last bit, per (shape, query) cell, and every backend must
reproduce all three.  Any drift in root selection, importance
weighting, rng consumption or the std-error formula fails here first.

The budget (12) sits below every cell's promising-root population, so
the pinned values exercise the genuine sampling path, never the
exact-recovery shortcut.  Re-pin after an intentional estimator change
with ``python -m pytest tests/golden --update-golden``.
"""

from __future__ import annotations

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.estimate import estimate_count

from .test_golden_counts import GRAPHS

BACKENDS = ("sim", "fast", "native")
SEED = 5
SAMPLES = 12

#: three query shapes per graph shape; small enough to run everywhere,
#: different enough to stress both anchoring directions
QUERIES = (BicliqueQuery(2, 2), BicliqueQuery(2, 3), BicliqueQuery(3, 2))


@pytest.fixture(scope="module")
def graphs():
    return {name: build() for name, (build, _) in GRAPHS.items()}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("query", QUERIES, ids=str)
@pytest.mark.parametrize("shape", sorted(GRAPHS))
def test_golden_estimate(golden_estimates, graphs, shape, query, backend):
    est = estimate_count(graphs[shape], query, samples=SAMPLES,
                         seed=SEED, backend=backend)
    assert est.samples < est.population, (
        f"{shape}/{query}: population {est.population} too small for the "
        f"{SAMPLES}-sample budget; this cell would pin the exact-recovery "
        f"path instead of the sampling path")
    golden_estimates.check(
        f"{shape}/{query}/seed{SEED}",
        {"estimate": est.estimate, "std_error": est.std_error,
         "samples": est.samples},
        source=f"approx[{backend}]")
