"""The golden-count store: pinned fixed-seed counts for every engine.

``golden_counts.json`` holds one pinned biclique count per
(graph shape, query) cell.  Every (algorithm, backend) pair must
reproduce it exactly — any silent count drift in a future engine fails
here first.  Re-pin after an *intentional* semantic change with::

    python -m pytest tests/golden --update-golden

Update mode still cross-checks: if two engines disagree during the same
re-pin session, the run fails instead of pinning either value.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden_counts.json"
MUTATIONS_PATH = Path(__file__).parent / "golden_mutations.json"
ESTIMATES_PATH = Path(__file__).parent / "golden_estimates.json"


class GoldenStore:
    """Assert-or-repin access to the pinned counts."""

    def __init__(self, path: Path, update: bool) -> None:
        self.path = path
        self.update = update
        self.data: dict[str, int] = {}
        if path.exists():
            self.data = json.loads(path.read_text(encoding="utf-8"))
        self.session_values: dict[str, tuple[int, str]] = {}

    def check(self, key: str, value: int, source: str) -> None:
        if key in self.session_values:
            prior, prior_source = self.session_values[key]
            assert value == prior, (
                f"engines disagree on {key}: {prior_source} found {prior}, "
                f"{source} found {value}")
        else:
            self.session_values[key] = (value, source)
        if self.update:
            if self.data.get(key) != value:
                self.data[key] = value
                self.path.write_text(
                    json.dumps(self.data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
            return
        assert key in self.data, (
            f"no golden count pinned for {key}; run "
            f"`python -m pytest tests/golden --update-golden`")
        assert value == self.data[key], (
            f"count drift on {key}: {source} found {value}, "
            f"golden is {self.data[key]}")


@pytest.fixture(scope="session")
def golden(request) -> GoldenStore:
    return GoldenStore(GOLDEN_PATH,
                       bool(request.config.getoption("--update-golden",
                                                     default=False)))


@pytest.fixture(scope="session")
def golden_estimates(request) -> GoldenStore:
    """Pinned sampling-tier traces (``golden_estimates.json``): one
    {estimate, std_error, samples} record per (shape, query, seed)
    cell, reproduced bit-for-bit by every backend.  Same
    assert-or-repin semantics and the same ``--update-golden`` flag as
    the count store (floats survive the JSON round trip exactly —
    ``json`` serialises the shortest repr, which Python parses back to
    the identical bits)."""
    return GoldenStore(ESTIMATES_PATH,
                       bool(request.config.getoption("--update-golden",
                                                     default=False)))


@pytest.fixture(scope="session")
def golden_mutations(request) -> GoldenStore:
    """Pinned per-prefix count traces for the golden mutation streams
    (``golden_mutations.json``); same assert-or-repin semantics and the
    same ``--update-golden`` flag as the count store."""
    return GoldenStore(MUTATIONS_PATH,
                       bool(request.config.getoption("--update-golden",
                                                     default=False)))
