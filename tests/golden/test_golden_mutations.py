"""Golden mutation traces: pinned per-prefix counts under edit streams.

The metamorphic extension of the golden-count harness to streaming
graphs: for each golden graph shape, a fixed-seed stream of 200 single
edge toggles is replayed through a
:class:`~repro.dynamic.DynamicGraphSession` tracking that shape's
pinned query, and the count after *every* prefix is asserted against
``golden_mutations.json`` — any drift in the delta rule, the cutover,
or the snapshot path fails on the exact edit index that diverged.

Every backend replays the same stream against the same pinned trace
(the store cross-checks engines within one session), and prefixes at
a fixed recount cadence are additionally verified against an
independent from-scratch recount on that backend.  Re-pin after an
intentional semantic change with
``python -m pytest tests/golden --update-golden``.
"""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicGraphSession
from repro.service.mutate import edit_stream

from tests.golden.test_golden_counts import GRAPHS

BACKENDS = ("sim", "fast", "native")
MUTATION_EDITS = 200
RECOUNT_EVERY = 40
STREAM_SEED = 29


@pytest.fixture(scope="module")
def graphs():
    return {name: (build(), query)
            for name, (build, query) in GRAPHS.items()}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape", sorted(GRAPHS))
def test_golden_mutation_trace(golden_mutations, graphs, shape, backend):
    graph, query = graphs[shape]
    stream = edit_stream(graph, MUTATION_EDITS, seed=STREAM_SEED)
    # a huge cutover ratio pins the *delta rule* on every edit — the
    # sim planner prices rebuilds in simulated device-seconds, which
    # would otherwise cut over (and recount) on nearly every edit;
    # cutover exactness has its own property test
    dyn = DynamicGraphSession.from_graph(graph, backend=backend,
                                         cutover_ratio=1e9,
                                         track=[(query.p, query.q)])
    trace = []
    for i, mutation in enumerate(stream):
        dyn.apply(mutation)
        count = dyn.count(query.p, query.q)
        trace.append(count)
        if (i + 1) % RECOUNT_EVERY == 0:
            assert count == dyn.recount(query.p, query.q,
                                        backend=backend), (
                f"incremental diverged from recount at edit {i} "
                f"on {shape}/{query}")
    assert dyn.epoch == MUTATION_EDITS
    assert dyn.stats.delta_updates == MUTATION_EDITS
    golden_mutations.check(f"{shape}/{query}/seed{STREAM_SEED}", trace,
                           source=f"DynamicGraphSession[{backend}]")
