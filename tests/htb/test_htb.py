"""Tests for the HTB structure and its simulated-device intersection."""

import numpy as np

from repro.graph.bipartite import LAYER_U
from repro.graph.twohop import build_two_hop_index
from repro.gpu.device import rtx_3090
from repro.gpu.intersect import binary_search_intersect
from repro.gpu.metrics import KernelMetrics
from repro.htb.bitmap import encode
from repro.htb.htb import (
    BitmapSet,
    build_htb_from_rows,
    htb_from_graph,
    htb_from_two_hop,
    intersect_device,
    intersect_exact,
)


def _arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestHTBStructure:
    def test_from_graph_roundtrip(self, medium_power_law):
        htb = htb_from_graph(medium_power_law, LAYER_U)
        for u in range(medium_power_law.num_u):
            assert np.array_equal(htb.list_of(u),
                                  medium_power_law.neighbors(LAYER_U, u))

    def test_from_two_hop_roundtrip(self, small_random):
        index = build_two_hop_index(small_random, LAYER_U, 2)
        htb = htb_from_two_hop(index)
        for u in range(small_random.num_u):
            assert np.array_equal(htb.list_of(u), index.of(u))

    def test_off_array(self):
        htb = build_htb_from_rows([_arr(0, 1), _arr(), _arr(64)])
        assert htb.off.tolist() == [0, 1, 1, 2]
        assert htb.words_of(0) == 1
        assert htb.words_of(1) == 0

    def test_nbytes_positive(self, medium_power_law):
        htb = htb_from_graph(medium_power_law, LAYER_U)
        assert htb.nbytes > 0

    def test_compression_vs_csr(self):
        """Dense consecutive lists compress ~32x over CSR words."""
        rows = [np.arange(320, dtype=np.int64)]
        htb = build_htb_from_rows(rows)
        assert htb.total_words == 10  # 320 ids in 10 words

    def test_one_block_count(self):
        rows = [_arr(0), _arr(40), _arr(64, 65)]
        htb = build_htb_from_rows(rows)
        assert htb.one_block_count() == 2

    def test_density(self):
        rows = [_arr(0, 1, 2, 3)]
        htb = build_htb_from_rows(rows)
        assert htb.density() == 4.0


class TestBitmapSet:
    def test_from_vertices_roundtrip(self):
        s = BitmapSet.from_vertices(_arr(5, 9, 200))
        assert s.vertices().tolist() == [5, 9, 200]
        assert s.count() == 3

    def test_empty(self):
        s = BitmapSet.from_vertices(_arr())
        assert s.is_empty() and s.count() == 0


class TestIntersectDevice:
    def _sets(self, a, b):
        return BitmapSet(*encode(a)), BitmapSet(*encode(b))

    def test_example7_result(self):
        keys, lst = self._sets(_arr(3, 10, 23, 102),
                               _arr(3, 8, 10, 17, 73, 79, 82))
        m = KernelMetrics()
        out = intersect_device(keys, lst, rtx_3090(), m)
        assert out.vertices().tolist() == [3, 10]
        assert m.bitwise_ops >= 1

    def test_matches_exact_random(self):
        rng = np.random.default_rng(2)
        spec = rtx_3090()
        for _ in range(40):
            a = np.unique(rng.integers(0, 3000, rng.integers(0, 120)))
            b = np.unique(rng.integers(0, 3000, rng.integers(0, 120)))
            keys, lst = self._sets(a, b)
            m = KernelMetrics()
            out = intersect_device(keys, lst, spec, m)
            assert np.array_equal(out.vertices(), np.intersect1d(a, b))

    def test_empty_inputs(self):
        spec = rtx_3090()
        keys, lst = self._sets(_arr(), _arr(1, 2))
        out = intersect_device(keys, lst, spec, KernelMetrics())
        assert out.is_empty()

    def test_fewer_transactions_than_csr(self):
        """The Fig. 4 claim: HTB needs fewer memory transactions than
        CSR binary search on clustered adjacency data."""
        spec = rtx_3090()
        rng = np.random.default_rng(3)
        base = np.unique(rng.integers(0, 4000, 600))
        keys_ids = base[rng.random(len(base)) < 0.25]
        csr_m = KernelMetrics()
        binary_search_intersect(keys_ids, base, spec, csr_m)
        htb_m = KernelMetrics()
        keys, lst = self._sets(keys_ids, base)
        intersect_device(keys, lst, spec, htb_m)
        assert htb_m.global_transactions < csr_m.global_transactions

    def test_shared_vs_global_keys(self):
        spec = rtx_3090()
        a = _arr(*range(0, 320, 2))
        b = _arr(*range(0, 320, 3))
        keys, lst = self._sets(a, b)
        m_shared, m_global = KernelMetrics(), KernelMetrics()
        intersect_device(keys, lst, spec, m_shared, keys_in_shared=True)
        intersect_device(keys, lst, spec, m_global, keys_in_shared=False)
        assert m_shared.shared_accesses > 0
        assert m_global.shared_accesses == 0
        assert m_global.global_transactions > m_shared.global_transactions


class TestIntersectExact:
    def test_matches_numpy(self):
        a = _arr(1, 5, 99, 400)
        b = _arr(5, 99, 401)
        out = intersect_exact(BitmapSet(*encode(a)), BitmapSet(*encode(b)))
        assert out.vertices().tolist() == [5, 99]
