"""Tests for the truncated-bitmap codec."""

import numpy as np

from repro.htb.bitmap import (
    and_aligned,
    cardinality,
    decode,
    encode,
    popcount,
)


def _arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestEncode:
    def test_paper_example6(self):
        """Example 6: N2^q(u) = {3, 8, 10, 17, 73, 79, 82} hashes into
        words 0 and 2 with values 132360 and 295424."""
        idx, val = encode(_arr(3, 8, 10, 17, 73, 79, 82))
        assert idx.tolist() == [0, 2]
        assert val.tolist() == [132360, 295424]

    def test_empty(self):
        idx, val = encode(_arr())
        assert len(idx) == 0 and len(val) == 0

    def test_single_word(self):
        idx, val = encode(_arr(0, 31))
        assert idx.tolist() == [0]
        assert val.tolist() == [1 | (1 << 31)]

    def test_word_boundary(self):
        idx, val = encode(_arr(31, 32))
        assert idx.tolist() == [0, 1]
        assert val.tolist() == [1 << 31, 1]

    def test_custom_word_bits(self):
        idx, val = encode(_arr(0, 4, 5), word_bits=4)
        assert idx.tolist() == [0, 1]
        assert val.tolist() == [1, 0b11]


class TestDecode:
    def test_roundtrip_example(self):
        vertices = _arr(3, 8, 10, 17, 73, 79, 82)
        assert np.array_equal(decode(*encode(vertices)), vertices)

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            vs = np.unique(rng.integers(0, 10_000, rng.integers(0, 200)))
            assert np.array_equal(decode(*encode(vs)), vs)

    def test_empty(self):
        assert len(decode(*encode(_arr()))) == 0


class TestPopcount:
    def test_values(self):
        assert popcount(np.asarray([0, 1, 3, 255], dtype=np.uint64)).tolist() \
            == [0, 1, 2, 8]

    def test_cardinality(self):
        idx, val = encode(_arr(1, 2, 3, 40, 99))
        assert cardinality(val) == 5

    def test_cardinality_empty(self):
        assert cardinality(np.empty(0, dtype=np.uint64)) == 0


class TestAndAligned:
    def test_paper_example7(self):
        """Example 7: CL[l-1] = {3,10,23,102}, N2^q(u) as in Example 6;
        intersection = {3, 10} via 8389640 & 132360 = 1032."""
        a_idx, a_val = encode(_arr(3, 10, 23, 102))
        b_idx, b_val = encode(_arr(3, 8, 10, 17, 73, 79, 82))
        out_idx, out_val = and_aligned(a_idx, a_val, b_idx, b_val)
        assert out_idx.tolist() == [0]
        assert out_val.tolist() == [1032]
        assert decode(out_idx, out_val).tolist() == [3, 10]

    def test_matches_set_intersection(self):
        rng = np.random.default_rng(1)
        for _ in range(40):
            a = np.unique(rng.integers(0, 2000, rng.integers(0, 150)))
            b = np.unique(rng.integers(0, 2000, rng.integers(0, 150)))
            out = decode(*and_aligned(*encode(a), *encode(b)))
            assert np.array_equal(out, np.intersect1d(a, b))

    def test_empty_sides(self):
        a = encode(_arr(1, 2))
        e = encode(_arr())
        assert len(and_aligned(*a, *e)[0]) == 0
        assert len(and_aligned(*e, *a)[0]) == 0

    def test_commutative(self):
        a = encode(_arr(1, 40, 70))
        b = encode(_arr(40, 70, 200))
        ab = and_aligned(*a, *b)
        ba = and_aligned(*b, *a)
        assert np.array_equal(ab[0], ba[0])
        assert np.array_equal(ab[1], ba[1])
