"""Public-API docstring examples must be runnable, verbatim.

The same modules are checked in CI with ``pytest --doctest-modules``;
this mirror keeps the guarantee inside the tier-1 suite, so a drifting
example fails locally before it fails in the docs job.
"""

import doctest

import pytest

import repro
import repro.dist
import repro.engine
import repro.engine.base
import repro.plan
import repro.query
import repro.service
import repro.service.pool
import repro.service.telemetry

MODULES = [repro, repro.query, repro.engine, repro.engine.base,
           repro.plan, repro.service, repro.service.pool,
           repro.service.telemetry, repro.dist]
#: modules whose docstrings are required to carry at least one example
MUST_HAVE_EXAMPLES = {repro, repro.query, repro.engine, repro.plan,
                      repro.service}


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_api_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    if module in MUST_HAVE_EXAMPLES:
        assert result.attempted > 0, \
            f"{module.__name__} lost its docstring examples"
