"""batch_count semantics: parsing, session reuse, per-batch accounting."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.bcl import bcl_count
from repro.errors import QueryError
from repro.graph.generators import random_bipartite
from repro.query import BatchResult, GraphSession, batch_count, parse_queries


class TestParseQueries:
    def test_comma_string(self):
        assert parse_queries("3x3,3x4") == [BicliqueQuery(3, 3),
                                            BicliqueQuery(3, 4)]

    def test_mixed_iterable(self):
        got = parse_queries(["2x2", (3, 4), BicliqueQuery(5, 5)])
        assert got == [BicliqueQuery(2, 2), BicliqueQuery(3, 4),
                       BicliqueQuery(5, 5)]

    def test_uppercase_x_and_spaces(self):
        assert parse_queries(" 2X3 ,4x4") == [BicliqueQuery(2, 3),
                                              BicliqueQuery(4, 4)]

    @pytest.mark.parametrize("bad", ["", "3", "3x", "3xx4", "axb", "0x2",
                                     [object()], [(2, "three")],
                                     [(1, 2, 3)]])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(QueryError):
            parse_queries(bad)

    def test_truncated_spec_names_the_missing_side(self):
        with pytest.raises(QueryError, match=r"'3x'.*missing q"):
            parse_queries("3x")
        with pytest.raises(QueryError, match=r"'x3'.*missing p"):
            parse_queries("x3")
        with pytest.raises(QueryError, match=r"'x'.*missing p and q"):
            parse_queries("x")

    def test_zero_sized_spec_names_the_bound(self):
        with pytest.raises(QueryError, match=r"'0x3'.*>= 1.*\(0, 3\)"):
            parse_queries("0x3")

    @pytest.mark.parametrize("bad, got", [
        ("-1x3", "(-1, 3)"), ("3x-2", "(3, -2)"), ("-1x-1", "(-1, -1)"),
    ])
    def test_negative_sizes_name_the_bound(self, bad, got):
        with pytest.raises(QueryError) as exc:
            parse_queries(bad)
        assert repr(bad) in str(exc.value)
        assert got in str(exc.value)

    def test_negative_pair_rejected_like_strings(self):
        with pytest.raises(QueryError, match=r">= 1.*\(2, -1\)"):
            parse_queries([(2, -1)])

    def test_non_integer_side_is_called_out(self):
        with pytest.raises(QueryError, match=r"'3\.5x2'.*integers"):
            parse_queries("3.5x2")

    def test_malformed_specs_are_value_errors(self):
        """QueryError doubles as ValueError, so callers can use the
        standard-library idiom for bad-value input."""
        for bad in ("3x", "0x3", "-1x3"):
            with pytest.raises(ValueError):
                parse_queries(bad)


class TestBatchCount:
    def test_raw_graph_gets_fresh_session(self):
        g = random_bipartite(30, 20, 120, seed=2)
        batch = batch_count(g, "2x2,2x3", backend="fast")
        assert isinstance(batch, BatchResult)
        assert batch.session.graph is g
        assert len(batch.results) == 2
        assert batch.counts == [r.count for r in batch.results]

    def test_session_survives_across_batches(self):
        g = random_bipartite(30, 20, 120, seed=2)
        session = GraphSession(g)
        first = batch_count(session, "2x2,2x3", backend="fast")
        second = batch_count(session, "2x2,2x3", backend="fast")
        assert first.session is second.session is session
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert first.counts == second.counts

    def test_method_selects_algorithm(self):
        g = random_bipartite(25, 20, 100, seed=4)
        batch = batch_count(g, ["2x2"], method="BCL", backend="fast")
        assert batch.results[0].algorithm == "BCL"
        single = bcl_count(g, BicliqueQuery(2, 2), backend="fast")
        assert batch.counts == [single.count]

    def test_workers_imply_parallel_backend(self):
        g = random_bipartite(40, 30, 200, seed=6)
        serial = batch_count(g, "2x2,3x3", backend="fast")
        sharded = batch_count(g, "2x2,3x3", workers=2)
        assert sharded.counts == serial.counts
        assert all(r.backend == "par" for r in sharded.results)

    def test_conflicting_spec_with_existing_session_raises(self):
        from repro.gpu.device import small_test_device

        g = random_bipartite(20, 15, 60, seed=8)
        session = GraphSession(g)
        with pytest.raises(QueryError):
            batch_count(session, "2x2", spec=small_test_device())

    def test_value_equal_spec_with_existing_session_is_accepted(self):
        from repro.gpu.device import small_test_device

        g = random_bipartite(20, 15, 60, seed=8)
        session = GraphSession(g, spec=small_test_device())
        batch = batch_count(session, "2x2", spec=small_test_device())
        assert len(batch.results) == 1

    def test_default_spec_session_accepts_explicit_default(self):
        from repro.gpu.device import rtx_3090

        g = random_bipartite(20, 15, 60, seed=8)
        session = GraphSession(g)  # spec=None -> counters use rtx_3090()
        batch = batch_count(session, "2x2", spec=rtx_3090())
        assert len(batch.results) == 1

    def test_use_cache_false_skips_the_cache(self):
        g = random_bipartite(20, 15, 60, seed=8)
        session = GraphSession(g)
        batch_count(session, "2x2", backend="fast", use_cache=False)
        again = batch_count(session, "2x2", backend="fast", use_cache=False)
        assert (again.cache_hits, again.cache_misses) == (0, 0)
        assert len(session.results) == 0
