"""GraphSession: shared precomputation built once, identical to classic.

Covers the batch-engine acceptance criterion: for a batch of >= 3
queries on one graph, the reorder permutation, two-hop index and HTB are
each constructed exactly once (asserted via the session's construction
counters), and every batched count is bit-identical to the corresponding
single-query result on all three backends.
"""

import numpy as np
import pytest

from repro.core.counts import BicliqueQuery
from repro.core.device_common import prepare_device_inputs
from repro.core.gbc import gbc_count
from repro.bench.runner import run_method
from repro.errors import QueryError
from repro.graph.bipartite import LAYER_U, LAYER_V
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.graph.priority import priority_order, rank_from_order
from repro.graph.twohop import build_two_hop_index
from repro.query import GraphSession, batch_count

BACKENDS = [("sim", None), ("fast", None), ("par", 2)]


@pytest.fixture(scope="module")
def graph():
    return power_law_bipartite(num_u=90, num_v=60, num_edges=360, seed=11)


class TestBuildOnce:
    """The acceptance criterion: each structure materialised exactly once."""

    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_batch_builds_each_structure_once_and_matches_single(
            self, graph, backend, workers):
        queries = [BicliqueQuery(2, 3), BicliqueQuery(3, 3),
                   BicliqueQuery(4, 3)]
        session = GraphSession(graph)
        batch = batch_count(session, queries, backend=backend,
                            workers=workers, layer=LAYER_U)

        s = session.stats
        assert s.wedge_builds == 1
        assert s.order_builds == 1          # the reorder permutation
        assert s.index_builds == 1          # the two-hop index
        assert s.htb_adj_builds == 1        # HTB over adjacency
        assert s.htb_two_hop_builds == 1    # HTB over N2^q
        assert s.prepare_calls == len(queries)

        for query, got in zip(queries, batch.results):
            single = gbc_count(graph, query, layer=LAYER_U,
                               backend=backend, workers=workers)
            assert got.count == single.count
            if backend == "sim":
                # bit-identical device accounting, not just the count
                assert got.metrics.global_transactions == \
                    single.metrics.global_transactions
                assert got.device_seconds == single.device_seconds

    def test_mixed_q_values_share_the_wedge_pass(self, graph):
        session = GraphSession(graph)
        batch_count(session, "3x3,3x4,4x4", backend="fast", layer=LAYER_U)
        s = session.stats
        assert s.wedge_builds == 1          # q=3 and q=4 share one pass
        assert s.order_builds == 2          # one permutation per k
        assert s.index_builds == 2
        assert s.htb_adj_builds == 1        # adjacency HTB is k-independent
        assert s.htb_two_hop_builds == 2

    def test_second_batch_builds_nothing_new(self, graph):
        session = GraphSession(graph)
        batch_count(session, "2x3,3x3", backend="fast", layer=LAYER_U)
        first = dict(session.stats.as_dict())
        batch_count(session, "2x3,3x3,4x3", backend="fast", layer=LAYER_U)
        second = session.stats.as_dict()
        for key in ("wedge_builds", "order_builds", "index_builds",
                    "htb_adj_builds", "htb_two_hop_builds"):
            assert second[key] == first[key]

    def test_methods_share_prepared_structures(self, graph):
        session = GraphSession(graph)
        query = BicliqueQuery(3, 3)
        counts = {m: session.count(query, m, backend="fast", layer=LAYER_U)
                  .count for m in ("BCL", "GBL", "GBC")}
        assert len(set(counts.values())) == 1
        s = session.stats
        assert s.wedge_builds == 1 and s.order_builds == 1
        assert s.index_builds == 1


class TestStructuresMatchClassicBuilders:
    def test_order_rank_index_identical(self):
        g = random_bipartite(60, 45, 260, seed=3)
        session = GraphSession(g)
        for layer in (LAYER_U, LAYER_V):
            anchored = g if layer == LAYER_U else g.swapped()
            for k in (2, 3):
                order = priority_order(anchored, LAYER_U, k)
                assert np.array_equal(session.priority_order(layer, k),
                                      order)
                rank = rank_from_order(order)
                assert np.array_equal(session.priority_rank(layer, k), rank)
                classic = build_two_hop_index(anchored, LAYER_U, k,
                                              min_priority_rank=rank)
                derived = session.two_hop_index(layer, k)
                assert np.array_equal(derived.offsets, classic.offsets)
                assert np.array_equal(derived.neighbors, classic.neighbors)
        assert session.stats.wedge_builds == 2  # one per layer, all k shared

    def test_prepared_matches_sessionless_inputs(self):
        g = random_bipartite(50, 40, 200, seed=9)
        session = GraphSession(g)
        query = BicliqueQuery(3, 2)
        via_session = session.prepared(query)
        classic = prepare_device_inputs(g, query)
        assert via_session.anchored_layer == classic.anchored_layer
        assert via_session.p == classic.p and via_session.q == classic.q
        assert np.array_equal(via_session.order, classic.order)
        assert np.array_equal(via_session.rank, classic.rank)
        assert np.array_equal(via_session.roots, classic.roots)
        assert np.array_equal(via_session.index.neighbors,
                              classic.index.neighbors)

    def test_all_methods_match_sessionless_runs(self):
        g = random_bipartite(45, 35, 180, seed=5)
        query = BicliqueQuery(2, 2)
        session = GraphSession(g)
        for method in ("Basic", "BCL", "BCLP", "GBL", "GBC",
                       "GBC-NH", "GBC-NB", "GBC-NW"):
            classic = run_method(method, g, query)
            shared = run_method(method, g, query, session=session)
            assert shared.count == classic.count, method


class TestSessionGuards:
    def test_wrong_graph_raises(self):
        g1 = random_bipartite(20, 15, 60, seed=0)
        g2 = random_bipartite(20, 15, 60, seed=1)
        session = GraphSession(g1)
        with pytest.raises(QueryError):
            gbc_count(g2, BicliqueQuery(2, 2), session=session)

    def test_unknown_method_raises(self):
        g = random_bipartite(10, 10, 30, seed=0)
        with pytest.raises(QueryError):
            GraphSession(g).count(BicliqueQuery(1, 1), "NOPE")

    def test_unknown_layer_raises(self):
        g = random_bipartite(10, 10, 30, seed=0)
        with pytest.raises(QueryError):
            GraphSession(g).anchored("W")
