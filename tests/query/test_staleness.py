"""Staleness: in-place graph edits always miss or invalidate caches.

Three cache layers key prepared state by graph-content fingerprint: the
session's result cache, the planner's instance memos (stats + probe
results), and the pool's live sessions.  An in-place mutation of a
graph's CSR arrays — the one edit the object identity can't reveal —
must never let any of them serve an answer for the old content once the
owner is told to look (``GraphSession.refresh`` /
``SessionPool.refresh``), and the planner must notice *by itself* on
its next public call (``Planner._sync``).

Streaming edits don't need any of this: a
:class:`~repro.dynamic.DynamicGraphSession` versions every edit, so
its entries are never stale by construction (also pinned here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.dynamic import DynamicGraphSession, EdgeMutation
from repro.errors import ServiceError
from repro.graph.generators import random_bipartite
from repro.plan import Planner
from repro.query import GraphSession, graph_fingerprint
from repro.service.pool import SessionPool

QUERY = BicliqueQuery(2, 2)


def make_pair():
    """Two same-dimension graphs with different content (and counts)."""
    original = random_bipartite(24, 20, 96, seed=31)
    donor = random_bipartite(24, 20, 96, seed=32)
    assert graph_fingerprint(original) != graph_fingerprint(donor)
    return original, donor


def overwrite_in_place(target, donor) -> None:
    """The staleness hazard itself: replace ``target``'s CSR contents
    with ``donor``'s without changing any array object identity."""
    np.copyto(target.u_offsets, donor.u_offsets)
    np.copyto(target.u_neighbors, donor.u_neighbors)
    np.copyto(target.v_offsets, donor.v_offsets)
    np.copyto(target.v_neighbors, donor.v_neighbors)


class TestSessionRefresh:
    def test_stale_until_refresh_then_exact(self):
        graph, donor = make_pair()
        old_exact = gbc_count(graph, QUERY, backend="fast").count
        new_exact = gbc_count(donor, QUERY, backend="fast").count
        assert old_exact != new_exact   # the drift is observable

        session = GraphSession(graph)
        assert session.count(QUERY).count == old_exact
        overwrite_in_place(graph, donor)
        # the documented contract: memoisation keys on the fingerprint
        # taken at creation/refresh, so an unannounced in-place edit
        # serves the old content until refresh() is called...
        assert session.count(QUERY).count == old_exact
        # ... and refresh() detects the edit and drops everything
        assert session.refresh() is True
        assert session.fingerprint == graph_fingerprint(donor)
        assert session.count(QUERY).count == new_exact
        assert len(session.results) == 1    # only the fresh entry

    def test_refresh_on_untouched_graph_keeps_caches(self):
        graph, _ = make_pair()
        session = GraphSession(graph)
        first = session.count(QUERY)
        assert session.refresh() is False
        assert session.count(QUERY) is first    # still the cached object

    def test_refresh_is_idempotent(self):
        graph, donor = make_pair()
        session = GraphSession(graph)
        overwrite_in_place(graph, donor)
        assert session.refresh() is True
        assert session.refresh() is False


class TestPlannerSync:
    def test_reused_planner_resyncs_by_itself(self):
        """A planner held across an in-place edit must behave exactly
        like a planner built fresh on the mutated graph — no stale
        stats, no stale probes."""
        graph, donor = make_pair()
        planner = Planner(graph, seed=0)
        before = planner.plan(QUERY, backend="fast")
        overwrite_in_place(graph, donor)
        after = planner.plan(QUERY, backend="fast")
        fresh = Planner(graph, seed=0).plan(QUERY, backend="fast")
        assert after.as_dict() == fresh.as_dict()
        # and the prediction really is about the new content
        donor_view = Planner(donor, seed=0).plan(QUERY, backend="fast")
        assert after.predicted_seconds == donor_view.predicted_seconds
        assert before.as_dict() != after.as_dict() or \
            before.predicted_seconds != after.predicted_seconds

    def test_session_planner_follows_refresh(self):
        """Session-backed planners key on the *session's* fingerprint:
        stale until the session refreshes, synced right after."""
        graph, donor = make_pair()
        session = GraphSession(graph)
        planner = Planner(graph, session=session, seed=0)
        planner.plan(QUERY, backend="fast")
        overwrite_in_place(graph, donor)
        session.refresh()
        resynced = planner.plan(QUERY, backend="fast")
        fresh = Planner(graph, session=GraphSession(graph),
                        seed=0).plan(QUERY, backend="fast")
        assert resynced.as_dict() == fresh.as_dict()


class TestPoolRefresh:
    def test_static_in_place_edit_detected_and_repaired(self):
        graph, donor = make_pair()
        new_exact = gbc_count(donor, QUERY, backend="fast").count
        pool = SessionPool()
        pool.register("g", graph)
        pool.session("g").count(QUERY)
        overwrite_in_place(graph, donor)
        assert pool.refresh("g") is True
        assert pool.session("g").count(QUERY).count == new_exact
        assert pool.refresh("g") is False   # repaired, nothing left

    def test_name_with_no_live_session_has_nothing_to_refresh(self):
        graph, _ = make_pair()
        pool = SessionPool()
        pool.register("g", graph)           # never served -> no session
        assert pool.refresh("g") is False

    def test_unknown_name_raises(self):
        with pytest.raises(ServiceError, match="unknown graph"):
            SessionPool().refresh("nope")

    def test_dynamic_entries_are_never_stale(self):
        """Dynamic graphs version every edit, so refresh() has nothing
        to detect — reads after a mutation are exact without it."""
        graph, _ = make_pair()
        dyn = DynamicGraphSession.from_graph(graph, track=[(2, 2)])
        pool = SessionPool()
        pool.register("dyn", dyn)
        before = pool.session("dyn").count(QUERY).count
        pool.mutate("dyn", [EdgeMutation.toggle(0, 0)])
        assert pool.refresh("dyn") is False
        after = pool.session("dyn").count(QUERY)
        assert after.count == dyn.recount(2, 2)
        assert after.extras["epoch"] == 1.0
        assert before == gbc_count(graph, QUERY, backend="fast").count
