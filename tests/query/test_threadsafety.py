"""Concurrent hammer tests for the query layer's shared state.

The serving scheduler hits one ``GraphSession`` (and its ``ResultCache``)
from many worker threads at once.  Before the session/cache carried
locks, this load produced duplicated "build-once" structures (visible as
``stats.wedge_builds > 1``) and corrupted ``OrderedDict`` recency state
during concurrent eviction — the exact races these tests pin down.
"""

import threading


from repro.core.counts import BicliqueQuery, CountResult
from repro.graph.generators import power_law_bipartite
from repro.query import GraphSession, ResultCache

THREADS = 8


def hammer(fn, threads=THREADS, iterations=1):
    """Start ``threads`` workers on ``fn`` behind a barrier; re-raise the
    first worker exception (a silent crash must fail the test)."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(i):
        barrier.wait()
        try:
            for _ in range(iterations):
                fn(i)
        except Exception as exc:   # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        raise errors[0]


class TestSessionHammer:
    def test_lazy_builders_build_exactly_once_under_contention(self):
        graph = power_law_bipartite(200, 150, 700, seed=13)
        session = GraphSession(graph)

        def build(_i):
            session.wedges("U")
            session.priority_order("U", 3)
            session.two_hop_index("U", 3)
            session.htb_pair("U", 3)

        hammer(build)
        assert session.stats.wedge_builds == 1
        assert session.stats.order_builds == 1
        assert session.stats.index_builds == 1
        assert session.stats.htb_adj_builds == 1
        assert session.stats.htb_two_hop_builds == 1

    def test_concurrent_counts_are_correct_and_stats_exact(self):
        graph = power_law_bipartite(120, 90, 420, seed=14)
        expected = GraphSession(graph).count(
            BicliqueQuery(2, 2), backend="fast").count
        session = GraphSession(graph)

        counts = []
        lock = threading.Lock()

        def count(_i):
            got = session.count(BicliqueQuery(2, 2), backend="fast").count
            with lock:
                counts.append(got)

        hammer(count, iterations=5)
        assert counts == [expected] * (THREADS * 5)
        # one wedge pass total, however many threads raced to build it
        assert session.stats.wedge_builds == 1


class TestResultCacheHammer:
    @staticmethod
    def result(i: int) -> CountResult:
        return CountResult(algorithm="GBC", query=BicliqueQuery(2, 2),
                           count=i, wall_seconds=0.0)

    def test_contended_eviction_stays_consistent(self):
        cache = ResultCache(maxsize=16)

        def churn(i):
            for j in range(300):
                key = ("fp", "GBC", i, j % 24)
                cache.put(key, self.result(j))
                cache.get(key)
                cache.get(("fp", "GBC", (i + 1) % THREADS, j % 24))

        hammer(churn)
        assert len(cache) <= 16
        assert cache.hits + cache.misses == THREADS * 300 * 2

    def test_hit_returns_the_stored_object(self):
        cache = ResultCache(maxsize=8)
        stored = self.result(7)
        cache.put(("k",), stored)

        def read(_i):
            for _ in range(200):
                got = cache.get(("k",))
                assert got is stored

        hammer(read)


class TestRefreshUnderLoad:
    def test_refresh_races_with_builders_without_corruption(self):
        graph = power_law_bipartite(100, 80, 350, seed=15)
        session = GraphSession(graph)
        stop = threading.Event()

        def refresher():
            while not stop.is_set():
                session.refresh()

        t = threading.Thread(target=refresher)
        t.start()
        try:
            hammer(lambda _i: session.two_hop_index("U", 2), iterations=20)
        finally:
            stop.set()
            t.join()
        # graph content never changed, so refresh() must not have
        # invalidated anything: still exactly one build of each
        assert session.stats.wedge_builds == 1
        assert session.stats.index_builds == 1
