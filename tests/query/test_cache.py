"""The LRU result cache: accounting, eviction, and invalidation."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.errors import QueryError
from repro.graph.builders import from_edges
from repro.graph.generators import random_bipartite
from repro.query import GraphSession, ResultCache, graph_fingerprint


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(maxsize=4)
        assert cache.get(("a",)) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(("a",), "value")
        assert cache.get(("a",)) == "value"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))          # refresh "a": "b" is now the LRU entry
        cache.put(("c",), 3)
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert len(cache) == 2

    def test_bad_maxsize_raises(self):
        with pytest.raises(QueryError):
            ResultCache(maxsize=0)


class TestSessionResultCaching:
    def test_repeated_query_is_a_hit_with_same_result_object(self):
        g = random_bipartite(30, 20, 120, seed=3)
        session = GraphSession(g)
        query = BicliqueQuery(2, 2)
        first = session.count(query, backend="fast")
        second = session.count(query, backend="fast")
        assert second is first
        assert (session.results.hits, session.results.misses) == (1, 1)

    def test_key_distinguishes_backend_method_and_query(self):
        g = random_bipartite(30, 20, 120, seed=3)
        session = GraphSession(g)
        query = BicliqueQuery(2, 2)
        runs = [
            session.count(query, backend="fast"),
            session.count(query, backend="sim"),
            session.count(query, "BCL", backend="fast"),
            session.count(BicliqueQuery(2, 3), backend="fast"),
        ]
        assert session.results.hits == 0
        assert session.results.misses == len(runs)
        assert len({r.count for r in runs[:3]}) == 1  # same (2,2) count

    def test_key_distinguishes_worker_counts(self):
        # "par" timings/shard fields are worker-dependent even though
        # counts are not, so each worker count gets its own entry
        g = random_bipartite(30, 20, 120, seed=3)
        session = GraphSession(g)
        query = BicliqueQuery(2, 2)
        two = session.count(query, workers=2)
        three = session.count(query, workers=3)
        assert session.results.hits == 0 and session.results.misses == 2
        assert two.count == three.count
        assert session.count(query, workers=2) is two  # now a hit

    def test_eviction_bounds_session_memory(self):
        g = random_bipartite(30, 20, 120, seed=3)
        session = GraphSession(g, max_cached_results=2)
        for p, q in ((1, 1), (1, 2), (2, 1)):
            session.count(BicliqueQuery(p, q), backend="fast")
        assert len(session.results) == 2
        session.count(BicliqueQuery(1, 1), backend="fast")  # evicted: miss
        assert session.results.hits == 0
        assert session.results.misses == 4


class TestInvalidation:
    def test_fingerprint_is_content_based(self):
        edges = [(0, 0), (0, 1), (1, 0), (2, 1)]
        g1 = from_edges(3, 2, edges, name="one")
        g2 = from_edges(3, 2, edges, name="two")
        g3 = from_edges(3, 2, edges + [(2, 0)], name="three")
        assert graph_fingerprint(g1) == graph_fingerprint(g2)
        assert graph_fingerprint(g1) != graph_fingerprint(g3)

    def test_refresh_keeps_caches_when_graph_unchanged(self):
        g = random_bipartite(20, 15, 60, seed=0)
        session = GraphSession(g)
        session.count(BicliqueQuery(2, 2), backend="fast")
        assert session.refresh() is False
        assert len(session.results) == 1
        assert session.count(BicliqueQuery(2, 2), backend="fast")
        assert session.results.hits == 1

    def test_refresh_invalidates_after_in_place_mutation(self):
        # same shape, different edges, so the CSR arrays can be swapped
        # in place — modelling an upstream mutation of the "immutable"
        # graph that a long-lived serving session must not silently
        # answer stale counts for
        g = random_bipartite(30, 20, 120, seed=0)
        donor = random_bipartite(30, 20, 120, seed=1)
        session = GraphSession(g)
        stale = session.count(BicliqueQuery(2, 2), backend="fast").count
        old_fp = session.fingerprint

        for name in ("u_offsets", "u_neighbors", "v_offsets", "v_neighbors"):
            getattr(g, name)[:] = getattr(donor, name)

        assert session.refresh() is True
        assert session.fingerprint != old_fp
        assert len(session.results) == 0
        fresh = session.count(BicliqueQuery(2, 2), backend="fast").count
        expected = gbc_count(donor, BicliqueQuery(2, 2), backend="fast").count
        assert fresh == expected
        assert fresh != stale  # the two seeds really differ
