"""Persistent fork-pool: reuse, shipping, and every fallback path.

The headline regression test pins the reason this module exists: two
``run_sharded`` calls with *different* closures must be served by the
**same** worker processes (pid identity), where the legacy path forked
a fresh pool per call.  The rest covers the ShipError fallback, verbatim
exception propagation, the kill switch, and the mirrored token LRU.
"""

import functools
import os
from collections import OrderedDict

import pytest

from repro.parallel import procpool
from repro.parallel.procpool import (CACHE_CAP, ShipError, _TokenRegistry,
                                     _touch_lru, get_pool, shutdown_pools)
from repro.parallel.sharding import run_sharded

pytestmark = pytest.mark.skipif(not procpool.fork_available(),
                                reason="no fork on this platform")


@pytest.fixture(autouse=True)
def fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


def test_worker_pids_stable_across_calls():
    """Two sharded calls with different closures reuse the same
    processes — the fork-per-call overhead regression test."""
    pool = get_pool(2)
    assert pool is not None
    before = sorted(pool.worker_pids)

    weights = [1, 2, 3, 4, 5, 6, 7, 8]

    def weigh(shard):
        return (os.getpid(), sum(weights[i] for i in shard))

    first = run_sharded(weigh, len(weights), workers=2)

    offsets = {i: 10 * i for i in range(8)}     # a different closure

    def offset(shard):
        return (os.getpid(), sum(offsets[i] for i in shard))

    second = run_sharded(offset, len(offsets), workers=2)

    after = sorted(get_pool(2).worker_pids)
    assert before == after
    seen = {pid for _, (pid, _) in first + second}
    assert seen <= set(before)
    assert seen.isdisjoint({os.getpid()})
    assert sum(total for _, (_, total) in first) == sum(weights)
    assert sum(total for _, (_, total) in second) == sum(offsets.values())


def test_results_match_in_process():
    data = list(range(100))

    def chunk(shard):
        return sorted(data[i] * data[i] for i in shard)

    sharded = run_sharded(chunk, len(data), workers=3)
    flat = sorted(x for _, res in sharded for x in res)
    assert flat == sorted(d * d for d in data)
    covered = sorted(i for shard, _ in sharded for i in shard)
    assert covered == data


def test_fn_exception_propagates_verbatim_and_pool_survives():
    def boom(shard):
        raise ValueError(f"bad shard {tuple(shard)}")

    pool = get_pool(2)
    with pytest.raises(ValueError, match="bad shard"):
        pool.run(boom, [(0,), (1,)])
    assert pool.alive()
    assert pool.run(_shard_len, [(0, 1), (2,)]) == [2, 1]


def _shard_len(shard):
    return len(shard)


def _shard_sum(shard):
    return sum(shard)


def test_main_module_globals_ship_by_value():
    """The legacy pool forks at call time, so a ``__main__`` script's
    module globals ride into the children for free.  Persistent workers
    fork once, before those globals may exist — so ``__main__``
    functions must ship the globals (values, helper fns, modules) their
    body references."""
    import math
    ns = {"__name__": "__main__",
          "TABLE": {1: 10, 2: 20},
          "math": math}
    exec("def half(i):\n"
         "    return math.floor(TABLE[i] / 2)\n"
         "def fn(shard):\n"
         "    return sum(half(i) for i in shard)", ns)
    pool = get_pool(2)
    assert pool.run(ns["fn"], [(1,), (2, 1)]) == [5, 15]


def test_unshippable_fn_raises_shiperror():
    pool = get_pool(2)
    with pytest.raises(ShipError):
        pool.run(functools.partial(sum, start=1), [(0,), (1,)])
    assert pool.alive()


def test_run_sharded_falls_back_on_unshippable_fn():
    """A partial cannot ship by value, but run_sharded still answers
    (legacy fork-per-call pool under the hood)."""
    base = {i: i + 1 for i in range(6)}
    bound = functools.partial(_lookup_sum, base)
    results = run_sharded(bound, len(base), workers=2)
    assert sum(total for _, total in results) == sum(base.values())


def _lookup_sum(table, shard):
    return sum(table[i] for i in shard)


def test_kill_switch_disables_pool(monkeypatch):
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
    assert not procpool.pool_enabled()
    assert get_pool(4) is None
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", "1")
    assert procpool.pool_enabled()


def test_get_pool_rejects_single_worker():
    assert get_pool(1) is None


def test_broken_pool_is_replaced():
    pool = get_pool(2)
    pool.close()
    assert not pool.alive()
    fresh = get_pool(2)
    assert fresh is not pool
    assert fresh.alive()
    assert fresh.run(_shard_sum, [(1, 2), (3, 4)]) == [3, 7]


def test_token_registry_stability_and_recycling():
    reg = _TokenRegistry()
    state = {"graph": list(range(50))}
    tok = reg.token(state)
    assert reg.token(state) == tok          # stable while alive
    other = {"graph": list(range(50))}
    assert reg.token(other) != tok          # equality is not identity


def test_touch_lru_mirrors_eviction():
    """Parent mirror and worker cache replay the same token stream and
    must evict identically — the both-sides agreement the wire format
    depends on."""
    parent: OrderedDict = OrderedDict()
    worker: OrderedDict = OrderedDict()
    streams = [list(range(CACHE_CAP)), [0, 1, 2],
               list(range(CACHE_CAP, CACHE_CAP + 10))]
    for stream in streams:
        ev_p = _touch_lru(parent, stream, CACHE_CAP)
        ev_w = _touch_lru(worker, stream, CACHE_CAP)
        assert ev_p == ev_w
    assert list(parent) == list(worker)
    assert len(parent) <= CACHE_CAP


def test_par_backend_counts_identical_through_pool():
    """End to end: GBC counts through backend="par" (persistent pool)
    equal the in-process backend bit for bit."""
    from repro.core.counts import BicliqueQuery
    from repro.core.gbc import gbc_count
    from repro.graph.generators import power_law_bipartite

    g = power_law_bipartite(80, 60, 400, seed=11)
    for p, q in [(2, 2), (2, 3), (3, 3)]:
        par = gbc_count(g, BicliqueQuery(p, q), backend="par", workers=2)
        ref = gbc_count(g, BicliqueQuery(p, q), backend="fast")
        assert par.count == ref.count
