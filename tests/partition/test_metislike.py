"""Tests for the METIS-like baseline partitioner."""

import numpy as np

from repro.graph.bipartite import LAYER_U
from repro.graph.generators import power_law_bipartite
from repro.graph.twohop import build_two_hop_index
from repro.partition.metislike import edge_cut, metis_like_partition


def _index(seed=7, nu=90, nv=70, ne=450, q=2):
    g = power_law_bipartite(nu, nv, ne, seed=seed)
    return build_two_hop_index(g, LAYER_U, q)


class TestMetisLike:
    def test_every_vertex_assigned(self):
        index = _index()
        res = metis_like_partition(index, 4)
        assert np.all(res.assignment >= 0)
        assert np.all(res.assignment < 4)

    def test_balance(self):
        index = _index()
        res = metis_like_partition(index, 4)
        sizes = [len(p) for p in res.parts()]
        cap = -(-index.num_vertices // 4)
        assert max(sizes) <= cap + 1

    def test_cut_reported(self):
        index = _index()
        res = metis_like_partition(index, 4)
        assert res.cut_edges == edge_cut(index, res.assignment)

    def test_single_part_zero_cut(self):
        index = _index()
        res = metis_like_partition(index, 1)
        assert res.cut_edges == 0

    def test_refinement_not_worse(self):
        index = _index(seed=9)
        raw = metis_like_partition(index, 4, refine_rounds=0)
        refined = metis_like_partition(index, 4, refine_rounds=3)
        assert refined.cut_edges <= raw.cut_edges

    def test_empty_index(self):
        from repro.graph.builders import empty_graph
        g = empty_graph(0, 5)
        index = build_two_hop_index(g, LAYER_U, 1)
        res = metis_like_partition(index, 3)
        assert len(res.assignment) == 0


class TestEdgeCut:
    def test_manual(self):
        from repro.graph.builders import from_adjacency
        # u0-u1 are 2-hop neighbours (share v0); u2 isolated
        g = from_adjacency({0: [0], 1: [0], 2: [1]}, num_u=3, num_v=2)
        index = build_two_hop_index(g, LAYER_U, 1)
        same = np.array([0, 0, 1])
        split = np.array([0, 1, 1])
        assert edge_cut(index, same) == 0
        assert edge_cut(index, split) == 1
