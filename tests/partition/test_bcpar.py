"""Tests for BCPar (Algorithm 3)."""

import pytest

from repro.errors import PartitionError
from repro.graph.bipartite import LAYER_U
from repro.graph.generators import power_law_bipartite
from repro.graph.twohop import build_two_hop_index
from repro.partition.bcpar import bcpar_partition


def _setup(seed=5, nu=80, nv=60, ne=400, q=2):
    g = power_law_bipartite(nu, nv, ne, seed=seed)
    index = build_two_hop_index(g, LAYER_U, q)
    return g, index


class TestBCPar:
    def test_roots_partition_the_layer(self):
        g, index = _setup()
        pset = bcpar_partition(g, index, budget_words=2000)
        roots = sorted(r for p in pset.partitions for r in p.roots)
        assert roots == list(range(g.num_u))

    def test_autonomy_invariant(self):
        g, index = _setup()
        pset = bcpar_partition(g, index, budget_words=2000)
        pset.validate(index)  # raises if any root's closure leaks

    def test_budget_respected_beyond_first_root(self):
        """Partitions exceed the budget only when a single root's closure
        alone does (the unavoidable case)."""
        g, index = _setup()
        budget = 600
        pset = bcpar_partition(g, index, budget_words=budget)
        weights = pset.weights
        for part in pset.partitions:
            if len(part.roots) > 1:
                assert part.cost_words <= budget
            else:
                seed_root = part.roots[0]
                closure_cost = int(weights[seed_root]) + \
                    int(weights[index.of(seed_root)].sum())
                assert part.cost_words == closure_cost

    def test_larger_budget_fewer_partitions(self):
        g, index = _setup()
        small = bcpar_partition(g, index, budget_words=500)
        large = bcpar_partition(g, index, budget_words=5000)
        assert large.num_partitions <= small.num_partitions

    def test_cost_words_consistent(self):
        g, index = _setup()
        pset = bcpar_partition(g, index, budget_words=1500)
        for part in pset.partitions:
            expected = int(pset.weights[sorted(part.closure)].sum())
            assert part.cost_words == expected

    def test_replication_factor_at_least_one(self):
        g, index = _setup()
        pset = bcpar_partition(g, index, budget_words=1500)
        assert pset.replication_factor() >= 1.0

    def test_validate_detects_missing_closure(self):
        g, index = _setup()
        pset = bcpar_partition(g, index, budget_words=2000)
        # sabotage: drop a closure vertex that some root needs
        for part in pset.partitions:
            victims = [v for r in part.roots for v in index.of(r)]
            if victims:
                part.closure.discard(int(victims[0]))
                break
        with pytest.raises(PartitionError):
            pset.validate(index)

    def test_single_vertex_graph(self):
        from repro.graph.builders import from_adjacency
        g = from_adjacency({0: [0, 1]}, num_u=1, num_v=2)
        index = build_two_hop_index(g, LAYER_U, 1)
        pset = bcpar_partition(g, index, budget_words=10)
        assert pset.num_partitions == 1
        assert pset.partitions[0].roots == [0]
