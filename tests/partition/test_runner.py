"""Tests for the out-of-memory partitioned counting runner."""

import pytest

from repro.core.counts import BicliqueQuery
from repro.core.verify import brute_force_count
from repro.gpu.device import rtx_3090
from repro.graph.generators import power_law_bipartite
from repro.partition.runner import run_bcpar, run_metis_like


@pytest.fixture(scope="module")
def graph():
    return power_law_bipartite(70, 55, 350, seed=6, name="part-test")


@pytest.fixture(scope="module")
def query():
    return BicliqueQuery(3, 2)


@pytest.fixture(scope="module")
def truth(graph, query):
    return brute_force_count(graph, query)


class TestBCParRun:
    def test_exact_count(self, graph, query, truth):
        report, _ = run_bcpar(graph, query, budget_words=1200)
        assert report.total_count == truth

    def test_no_on_demand_traffic(self, graph, query):
        """Communication-free: BCPar never fetches on demand."""
        report, _ = run_bcpar(graph, query, budget_words=1200)
        assert report.on_demand_transfer_words == 0

    def test_counts_split_sums(self, graph, query, truth):
        report, _ = run_bcpar(graph, query, budget_words=1200)
        assert report.intra_count + report.inter_count == truth

    def test_initial_transfer_positive(self, graph, query):
        report, _ = run_bcpar(graph, query, budget_words=1200)
        assert report.initial_transfer_words > 0


class TestMetisLikeRun:
    def test_exact_count(self, graph, query, truth):
        report, _ = run_metis_like(graph, query, num_parts=4)
        assert report.total_count == truth

    def test_on_demand_traffic_exists(self, graph, query):
        """Cut edges force PCIe fetches — the Fig. 10 bottleneck."""
        report, _ = run_metis_like(graph, query, num_parts=4)
        assert report.on_demand_transfer_words > 0

    def test_single_part_no_traffic(self, graph, query):
        report, _ = run_metis_like(graph, query, num_parts=1)
        assert report.on_demand_transfer_words == 0
        assert report.inter_count == 0


class TestCrossBackendMetamorphic:
    """Partitioned totals are invariant under the execution engine:
    identical across sim/fast/par, across worker counts, and for both
    partitioners — only the accounting may differ."""

    BACKENDS = ("sim", "fast", "par")

    @staticmethod
    def _signature(report):
        return (report.total_count, report.intra_count, report.inter_count,
                report.initial_transfer_words,
                report.on_demand_transfer_words, report.num_partitions)

    def test_bcpar_backends_agree(self, graph, query, truth):
        signatures = set()
        for backend in self.BACKENDS:
            report, _ = run_bcpar(graph, query, budget_words=1200,
                                  backend=backend)
            signatures.add(self._signature(report))
            assert report.total_count == truth
        assert len(signatures) == 1

    def test_metis_backends_agree(self, graph, query, truth):
        signatures = set()
        for backend in self.BACKENDS:
            report, _ = run_metis_like(graph, query, num_parts=4,
                                       backend=backend)
            signatures.add(self._signature(report))
            assert report.total_count == truth
        assert len(signatures) == 1

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invariance(self, graph, query, truth, workers):
        bc, _ = run_bcpar(graph, query, budget_words=1200,
                          backend="par", workers=workers)
        me, _ = run_metis_like(graph, query, num_parts=4,
                               backend="par", workers=workers)
        assert bc.total_count == me.total_count == truth

    def test_par_comparisons_uninstrumented(self, graph, query):
        """Like fast, the parallel engine charges no comparisons."""
        report, _ = run_bcpar(graph, query, budget_words=1200,
                              backend="par", workers=2)
        assert report.comparisons == 0


class TestThroughputComparison:
    def test_bcpar_beats_metis(self, graph, query):
        """Fig. 10(a): BCPar throughput exceeds the METIS-like baseline."""
        spec = rtx_3090()
        bc, pset = run_bcpar(graph, query, budget_words=1200)
        me, _ = run_metis_like(graph, query,
                               num_parts=max(pset.num_partitions, 2))
        assert bc.throughput(spec) > me.throughput(spec)

    def test_metis_inter_slower_than_intra(self, graph, query):
        """Fig. 10(b): inter-partition throughput is the METIS bottleneck."""
        spec = rtx_3090()
        me, _ = run_metis_like(graph, query, num_parts=4)
        intra, inter = me.split_throughputs(spec)
        if me.inter_count > 0:
            assert inter < intra

    def test_seconds_decompose(self, graph, query):
        spec = rtx_3090()
        report, _ = run_bcpar(graph, query, budget_words=1200)
        assert report.total_seconds(spec) == pytest.approx(
            report.compute_seconds(spec) + report.transfer_seconds(spec))
