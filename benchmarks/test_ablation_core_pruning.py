"""Extension ablation: (q, p)-core pruning as a GBC preprocessor.

Every (p, q)-biclique survives the (q, p)-core peel (each member keeps
enough in-biclique neighbours), so peeling first is count-preserving and
strips the power-law tail before the 2-hop index is even built.  This
bench measures the edge reduction and the device-time effect.
"""

from repro.bench.datasets import load_dataset
from repro.bench.tables import format_seconds, render_table
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.graph.cores import prune_for_query

QUERY = BicliqueQuery(4, 4)
DATASETS = ("YT", "BC", "GH", "SO", "ID")


def test_core_pruning(benchmark, bench_scale, save_artifact):
    def run():
        rows = []
        data = {}
        for name in DATASETS:
            graph = load_dataset(name, bench_scale)
            full = gbc_count(graph, QUERY)
            core = prune_for_query(graph, QUERY.p, QUERY.q)
            pruned = gbc_count(core.subgraph, QUERY)
            assert pruned.count == full.count, name
            data[name] = {
                "edge_reduction": core.reduction(graph),
                "full_seconds": full.device_seconds,
                "pruned_seconds": pruned.device_seconds,
            }
            rows.append([name,
                         f"{core.reduction(graph) * 100:.1f}%",
                         format_seconds(full.device_seconds),
                         format_seconds(pruned.device_seconds)])
        return data, render_table(
            f"Ablation — (q,p)-core pruning before GBC, (p,q)={QUERY}",
            ["Dataset", "edges removed", "GBC full", "GBC pruned"], rows)

    data, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_core_pruning", text)
    for name, cell in data.items():
        assert cell["edge_reduction"] >= 0.0
        # pruning never hurts device time materially
        assert cell["pruned_seconds"] <= cell["full_seconds"] * 1.10, name
    # the power-law tail is substantial on at least some datasets
    assert max(c["edge_reduction"] for c in data.values()) > 0.10
