"""E2 — Table II: dataset statistics of the stand-ins.

Checks that every stand-in preserves the paper's qualitative features:
layer-size orientation and mean-degree contrast between layers.
"""

from repro.bench.datasets import PAPER_STATS
from repro.bench.experiments import experiment_table2


def test_table2(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(lambda: experiment_table2(scale=bench_scale),
                                rounds=1, iterations=1)
    save_artifact("table2", result.text)
    stats = result.data["stats"]
    assert len(stats) == len(PAPER_STATS)
    for key, s in stats.items():
        pu, pv, _, pdu, pdv = PAPER_STATS[key]
        assert (s.num_u >= s.num_v) == (pu >= pv), key
        if key != "OR":  # OR is regenerated for partition experiments
            assert (s.mean_degree_u > s.mean_degree_v) == (pdu > pdv), key
