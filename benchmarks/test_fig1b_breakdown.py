"""E1 — Fig. 1(b): BCL execution-time breakdown.

Paper shape: searching shared 1-hop and 2-hop neighbours dominates BCL's
runtime — up to >99%, average ~97% on the paper's datasets.  At stand-in
scale Python overheads are proportionally larger, so we assert the share
is dominant (>60% everywhere, >75% on average) rather than the exact 97%.
"""

import numpy as np

from repro.bench.experiments import experiment_fig1b


def test_fig1b(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig1b(scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("fig1b", result.text)
    shares = list(result.data["intersection_share"].values())
    assert all(s > 0.60 for s in shares), result.data["intersection_share"]
    assert float(np.mean(shares)) > 0.75
