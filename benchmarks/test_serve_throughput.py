"""Serving throughput: micro-batching scheduler vs a naive query loop.

The serving subsystem's promise: on a zipf-skewed mixed workload over
pooled graphs, the micro-batching scheduler sustains at least **2x** the
queries/sec of a naive one-query-at-a-time loop on the same backend —
with every served count bit-identical to a direct ``count(...)`` call.
The speedup comes from amortisation (one prepared session and one
result cache per graph instead of a full rebuild per request) plus
worker-thread overlap across graphs.

The 2x bar is asserted on hosts with >= 4 usable CPUs; smaller machines
still run the workload, verify bit-identical counts, record the JSON
artifact (``BENCH_serve.json``), and then skip the bar.  Runs in the
slow benchmark suite (``pytest -m "" benchmarks``) or directly:
``python benchmarks/test_serve_throughput.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import power_law_bipartite, random_bipartite
from repro.obs.trace import span, tally_kernel, tracing_enabled
from repro.parallel.sharding import default_workers
from repro.service import SchedulerConfig, WorkloadSpec, serve_bench
from repro.service.bench import write_artifact

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
MIN_SPEEDUP = 2.0
MIN_CPUS_FOR_BAR = 4

SPEC = WorkloadSpec(
    graphs=("hot", "warm", "cold"),
    shapes=((2, 2), (2, 3), (3, 3), (3, 4)),
    num_queries=400,
    clients=8,
    zipf_s=1.1,
    method="GBC",
    seed=17,
)
CONFIG = SchedulerConfig(batch_window=0.002, max_batch=64, workers=4,
                         backend="fast")


def make_graphs():
    return {
        "hot": power_law_bipartite(800, 600, 4000, seed=21, name="hot"),
        "warm": random_bipartite(600, 500, 3000, seed=22, name="warm"),
        "cold": power_law_bipartite(500, 400, 2200, seed=23, name="cold"),
    }


def _render(artifact: dict) -> str:
    served, naive, tel = (artifact["served"], artifact["naive"],
                          artifact["telemetry"])
    lines = [
        f"Serving throughput — zipf mixed workload "
        f"({SPEC.num_queries} queries, {SPEC.clients} clients, "
        f"{artifact['host']['usable_cpus']} usable CPUs, backend "
        f"{artifact['scheduler']['backend']})",
        f"{'path':<8} {'requests':>8} {'qps':>9} {'p50 ms':>8} "
        f"{'p99 ms':>8}",
        f"{'served':<8} {served['completed']:>8} "
        f"{served['throughput_qps']:>9.1f} "
        f"{tel['latency_ms']['p50']:>8.1f} "
        f"{tel['latency_ms']['p99']:>8.1f}",
        f"{'naive':<8} {naive['requests']:>8} "
        f"{naive['throughput_qps']:>9.1f} {'-':>8} {'-':>8}",
        f"speedup vs naive: {artifact['speedup_vs_naive']:.2f}x "
        f"(mean batch {tel['batches']['mean_size']:.1f}, "
        f"max {tel['batches']['max_size']})",
        f"mismatches: {len(artifact['mismatches'])}",
    ]
    return "\n".join(lines)


def test_serve_throughput(save_artifact):
    # the bar below is measured with tracing off — the default, and the
    # configuration the <2% instrumentation-overhead claim is made for
    assert not tracing_enabled()
    artifact = serve_bench(make_graphs(), SPEC, config=CONFIG,
                           naive_limit=60, verify=True)
    write_artifact(artifact, ARTIFACT_DIR / "BENCH_serve.json")
    save_artifact("serve_throughput", _render(artifact))

    # the hard guarantee first: serving never changes an answer
    assert artifact["mismatches"] == [], artifact["mismatches"]
    assert artifact["served"]["completed"] == SPEC.num_queries
    assert artifact["served"]["failed"] == 0

    cpus = default_workers()
    if cpus < MIN_CPUS_FOR_BAR:
        pytest.skip(f"throughput bar needs >= {MIN_CPUS_FOR_BAR} usable "
                    f"CPUs, have {cpus} (counts verified, artifact "
                    f"recorded, measured "
                    f"{artifact['speedup_vs_naive']:.2f}x)")
    assert artifact["speedup_vs_naive"] >= MIN_SPEEDUP, (
        f"served {artifact['served']['throughput_qps']:.1f} qps vs naive "
        f"{artifact['naive']['throughput_qps']:.1f} qps = "
        f"{artifact['speedup_vs_naive']:.2f}x, below the "
        f"{MIN_SPEEDUP}x bar")


def test_disabled_tracing_overhead_is_negligible():
    """The instrumented seams cost one flag check when tracing is off.

    The serve-bench throughput bar above already runs through every
    traced seam with tracing disabled; this pins the per-call price of
    a disabled span + kernel tally directly.  5µs/iteration is ~25x the
    measured cost on a 2020s laptop and far below 2% of even the
    smallest kernel batch, so the bound fails only if someone puts real
    work on the disabled path.
    """
    import time

    assert not tracing_enabled()
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with span("bench.noop", detail=1):
            tally_kernel("noop", items=4)
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6, f"disabled span+tally cost {per_call * 1e6:.2f}µs"


if __name__ == "__main__":      # pragma: no cover - manual invocation
    art = serve_bench(make_graphs(), SPEC, config=CONFIG,
                      naive_limit=60, verify=True)
    write_artifact(art, ARTIFACT_DIR / "BENCH_serve.json")
    print(_render(art))
    print(json.dumps({"speedup_vs_naive": art["speedup_vs_naive"],
                      "mismatches": len(art["mismatches"])}))
