"""E10 — Fig. 11 (appendix): DFS vs hybrid DFS-BFS exploration.

Paper shape: hybrid uses ~1.3x more memory but runs ~2.2x faster on
average.  We assert memory overhead >= 1x (and bounded), plus a mean
speedup > 1.
"""

import numpy as np

from repro.bench.experiments import experiment_fig11


def test_fig11(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig11(datasets=("YT", "BC", "GH", "SO", "YL"),
                                 scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("fig11", result.text)
    mem_ratios = [c["memory_ratio"] for c in result.data.values()]
    speedups = [c["speedup"] for c in result.data.values()]
    assert all(1.0 <= m for m in mem_ratios)
    assert all(m < 50 for m in mem_ratios)  # bounded, not an explosion
    assert float(np.mean(speedups)) > 1.1
    assert all(s > 0.9 for s in speedups)
