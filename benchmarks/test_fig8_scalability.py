"""E4 — Fig. 8: scalability as the biclique size p + q grows.

Paper shape: GBC beats every baseline at every size (2.4x-6298x); CPU
runtimes first rise then fall with p + q, while GPU methods stay flat or
fall.  We assert the per-size win and the rise-then-fall (the CPU max is
attained strictly inside the sweep for at least some datasets).
"""

import numpy as np

from repro.bench.experiments import FIG8_TOTALS, experiment_fig8


def test_fig8(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig8(datasets=("YT", "BC", "GH", "SO", "S2"),
                                scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("fig8", result.text)
    series = result.data["series"]
    interior_peaks = 0
    for dataset, per_method in series.items():
        gbc = np.asarray(per_method["GBC"])
        for method in ("BCL", "BCLP", "GBL"):
            other = np.asarray(per_method[method])
            assert np.all(gbc <= other * 1.05), (dataset, method)
        peak = int(np.asarray(per_method["BCL"]).argmax())
        if 0 < peak < len(FIG8_TOTALS) - 1:
            interior_peaks += 1
    # rise-then-fall shows up on some of the datasets
    assert interior_peaks >= 1
