"""Native- vs fast-backend speedup on the Table II stand-ins.

The native engine's promise: counts bit-identical to ``fast`` with the
level-synchronous frontier traversal at least ``MIN_SPEEDUP`` (3x)
quicker on GBC — the paper's system — on **every** stand-in dataset,
with a 5x local target.  GBL rides along informationally (its
binary-search kernels leave less dispatch to amortise, so its ratios
are smaller but still >1x).

Timings use a warm :class:`~repro.query.GraphSession` so the
comparison isolates kernel execution: both backends reuse the same
cached order/index/HTB, and the native CSR pack is built once before
the first timed run.  Results land in
``benchmarks/artifacts/BENCH_native.json`` — the artifact the CI
``native-bench`` job uploads.

Runs as part of the slow benchmark suite (``pytest -m "" benchmarks``)
or directly: ``python benchmarks/test_native_speedup.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import BicliqueQuery
from repro.bench.datasets import list_datasets, load_dataset
from repro.core.gbc import gbc_count
from repro.core.gbl import gbl_count
from repro.engine.native import jit_available
from repro.query import GraphSession

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "BENCH_native.json"
QUERY = BicliqueQuery(3, 3)
REPS = 3
#: the CI bar — every Table II stand-in must clear this on GBC
MIN_SPEEDUP = 3.0
#: the local target (informational: asserted nowhere, reported always)
TARGET_SPEEDUP = 5.0
METHODS = (("GBC", gbc_count), ("GBL", gbl_count))


def _best_seconds(fn, graph, session, backend: str) -> tuple[float, int]:
    """Best-of-REPS warm wall seconds (and the count) for one backend."""
    result = fn(graph, QUERY, backend=backend, session=session)  # warm
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = fn(graph, QUERY, backend=backend, session=session)
        best = min(best, time.perf_counter() - t0)
    return best, result.count


def _measure_dataset(key: str, scale: str) -> dict:
    graph = load_dataset(key, scale)
    session = GraphSession(graph)
    methods = {}
    for name, fn in METHODS:
        fast_secs, fast_count = _best_seconds(fn, graph, session, "fast")
        native_secs, native_count = _best_seconds(fn, graph, session,
                                                  "native")
        assert native_count == fast_count, (
            f"{key}/{name}: native {native_count} != fast {fast_count}")
        methods[name] = {
            "count": fast_count,
            "fast_seconds": fast_secs,
            "native_seconds": native_secs,
            "speedup": fast_secs / native_secs,
        }
    return {"dataset": key, "query": [QUERY.p, QUERY.q],
            "methods": methods}


def _run(scale: str) -> dict:
    return {
        "kind": "native_speedup",
        "scale": scale,
        "reps": REPS,
        "min_speedup": MIN_SPEEDUP,
        "target_speedup": TARGET_SPEEDUP,
        "jit": jit_available(),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "datasets": [_measure_dataset(key, scale)
                     for key in list_datasets()],
    }


def _render(artifact: dict) -> str:
    lines = [f"Native backend speedup — (p,q)=({QUERY.p},{QUERY.q}), "
             f"scale {artifact['scale']}, "
             f"jit={'on' if artifact['jit'] else 'off'}",
             f"{'ds':<4}" + "".join(
                 f" {m + ' fast':>10} {m + ' nat':>10} {'x':>6}"
                 for m, _ in METHODS)]
    for row in artifact["datasets"]:
        cells = [f"{row['dataset']:<4}"]
        for name, _ in METHODS:
            m = row["methods"][name]
            cells.append(f" {m['fast_seconds'] * 1e3:>9.1f}m"
                         f" {m['native_seconds'] * 1e3:>9.1f}m"
                         f" {m['speedup']:>5.1f}x")
        lines.append("".join(cells))
    return "\n".join(lines)


def test_native_speedup(bench_scale, save_artifact):
    artifact = _run(bench_scale)
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    save_artifact("native_speedup", _render(artifact))
    for row in artifact["datasets"]:
        gbc = row["methods"]["GBC"]
        assert gbc["speedup"] >= MIN_SPEEDUP, (
            f"{row['dataset']}: GBC native speedup {gbc['speedup']:.2f}x "
            f"below the {MIN_SPEEDUP}x bar "
            f"(fast {gbc['fast_seconds'] * 1e3:.1f}ms, "
            f"native {gbc['native_seconds'] * 1e3:.1f}ms)")
        # the naive baseline must at least never lose to fast
        assert row["methods"]["GBL"]["speedup"] > 1.0, (
            f"{row['dataset']}: GBL native slower than fast")


if __name__ == "__main__":  # pragma: no cover - manual run
    artifact = _run("bench")
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    print(_render(artifact))
