"""E5 — Fig. 9: ablation of GBC's three optimisations (NH, NB, NW).

Paper shape: disabling any module slows GBC down — hybrid exploration is
the largest factor (avg 3.7x), HTB+Border and balancing around 2.2x each.
We assert every ratio >= ~1 and that each variant costs measurably on
average (>10%).
"""

import numpy as np

from repro.bench.experiments import experiment_fig9


def test_fig9(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig9(datasets=("YT", "BC", "GH", "YL", "S1"),
                                scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("fig9", result.text)
    ratios = result.data["ratios"]
    for variant, per_ds in ratios.items():
        flat = [r for rs in per_ds.values() for r in rs]
        assert all(r > 0.9 for r in flat), (variant, min(flat))
        assert float(np.mean(flat)) > 1.1, (variant, np.mean(flat))
