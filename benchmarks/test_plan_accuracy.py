"""Planner accuracy on the Table II stand-ins: predicted vs measured.

For every stand-in dataset this harness ranks the candidate plans with
``method="auto"``, then measures every explicit method's headline time
on the fast backend (best of ``REPS`` runs — single tiny-graph timings
are noise) and checks the planner's promise end to end:

* **bit-identical counts** — the auto-chosen method agrees with every
  explicit method on every dataset;
* **within 2x of best** — the auto choice's *measured* headline seconds
  are at most ``MAX_RATIO`` times the best explicit method's.

The per-dataset table of predicted vs measured seconds is written to
``benchmarks/artifacts/BENCH_plan.json`` — the perf-trajectory artifact
the CI planner-accuracy step regenerates on every run.

Runs as part of the slow benchmark suite (``pytest -m "" benchmarks``)
or directly: ``python benchmarks/test_plan_accuracy.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import BicliqueQuery, CostLedger, Planner
from repro.bench.datasets import list_datasets, load_dataset
from repro.bench.runner import headline_seconds, run_method
from repro.graph.stats import graph_fingerprint
from repro.plan import execute_plan

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "BENCH_plan.json"
QUERY = BicliqueQuery(3, 3)
BACKEND = "fast"
METHODS = ("Basic", "BCL", "BCLP", "GBL", "GBC")
REPS = 3
MAX_RATIO = 2.0


def _measure_headline(method: str, graph) -> tuple[float, int]:
    """Best-of-REPS headline seconds (and the count) for one method."""
    best, count = float("inf"), None
    for _ in range(REPS):
        result = run_method(method, graph, QUERY, backend=BACKEND)
        best = min(best, headline_seconds(result))
        count = result.count
    return best, count


def _measure_dataset(key: str, scale: str) -> dict:
    graph = load_dataset(key, scale)
    ranked = Planner(graph).rank(QUERY, backend=BACKEND)
    chosen = ranked[0]
    predicted = {plan.method: plan.predicted_seconds for plan in ranked}

    measured, counts = {}, {}
    for method in METHODS:
        measured[method], counts[method] = _measure_headline(method, graph)
    # the chosen plan executes the identical counter/backend as the
    # explicit run of its method, so reuse that measurement — re-timing
    # the same code path would only add timer noise to the ratio; one
    # execution still verifies the auto count end to end
    auto_count = execute_plan(chosen, graph, QUERY).count
    if chosen.method in measured:
        auto_best = measured[chosen.method]
    else:
        auto_best = min(
            headline_seconds(execute_plan(chosen, graph, QUERY))
            for _ in range(REPS))

    best_method = min(measured, key=measured.get)

    # close the loop: feed the measured seconds back through the cost
    # ledger and re-rank.  With one observation per cell the calibrated
    # cost equals the measurement itself, so the recalibrated choice
    # must land on the measured-best method — including any cell the
    # static model misranked — while the count stays bit-identical.
    ledger = CostLedger()
    fingerprint = graph_fingerprint(graph)
    for method in METHODS:
        if predicted.get(method):
            ledger.record(fingerprint, QUERY.p, QUERY.q, method, BACKEND,
                          measured[method],
                          predicted_seconds=predicted[method])
    recal = Planner(graph, ledger=ledger).rank(QUERY, backend=BACKEND)[0]
    calibrated_count = execute_plan(recal, graph, QUERY).count

    return {
        "dataset": key,
        "query": [QUERY.p, QUERY.q],
        "backend": BACKEND,
        "auto_method": chosen.method,
        "auto_predicted_seconds": chosen.predicted_seconds,
        "auto_measured_seconds": auto_best,
        "auto_count": auto_count,
        "best_method": best_method,
        "best_measured_seconds": measured[best_method],
        "ratio_vs_best": auto_best / measured[best_method],
        "calibrated_method": recal.method,
        "calibrated_seconds": recal.calibrated_seconds,
        "calibrated_measured_seconds": measured[recal.method],
        "calibrated_ratio_vs_best": (measured[recal.method]
                                     / measured[best_method]),
        "calibrated_count": calibrated_count,
        "predicted_seconds": predicted,
        "measured_seconds": measured,
        "counts": counts,
    }


def _run(scale: str) -> dict:
    rows = [_measure_dataset(key, scale) for key in list_datasets()]
    return {
        "kind": "plan_accuracy",
        "scale": scale,
        "reps": REPS,
        "max_ratio": MAX_RATIO,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "datasets": rows,
    }


def _render(artifact: dict) -> str:
    lines = [f"Planner accuracy — (p,q)=({QUERY.p},{QUERY.q}), "
             f"backend {BACKEND}, scale {artifact['scale']}",
             f"{'ds':<4} {'auto':>6} {'pred [ms]':>10} {'meas [ms]':>10} "
             f"{'best':>6} {'best [ms]':>10} {'ratio':>6} {'calib':>6}"]
    for row in artifact["datasets"]:
        lines.append(
            f"{row['dataset']:<4} {row['auto_method']:>6} "
            f"{row['auto_predicted_seconds'] * 1e3:>10.2f} "
            f"{row['auto_measured_seconds'] * 1e3:>10.2f} "
            f"{row['best_method']:>6} "
            f"{row['best_measured_seconds'] * 1e3:>10.2f} "
            f"{row['ratio_vs_best']:>5.2f}x "
            f"{row['calibrated_method']:>6}")
    return "\n".join(lines)


def test_plan_accuracy(bench_scale):
    # the accuracy contract is scale-independent; tiny keeps CI minutes
    scale = "tiny" if bench_scale == "bench" else bench_scale
    artifact = _run(scale)
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    print("\n" + _render(artifact))
    for row in artifact["datasets"]:
        distinct = set(row["counts"].values()) | {row["auto_count"],
                                                  row["calibrated_count"]}
        assert len(distinct) == 1, (
            f"{row['dataset']}: counts disagree: {row['counts']} "
            f"vs auto {row['auto_count']} "
            f"vs calibrated {row['calibrated_count']}")
        # ledger-fed re-ranking recovers the measured-best method, so
        # any cell the static model misranked is fixed by calibration
        assert row["calibrated_method"] == row["best_method"], (
            f"{row['dataset']}: calibrated rank chose "
            f"{row['calibrated_method']} over measured-best "
            f"{row['best_method']}")
        assert row["calibrated_ratio_vs_best"] <= row["ratio_vs_best"] \
            + 1e-9, f"{row['dataset']}: calibration made the choice worse"
        assert row["ratio_vs_best"] <= MAX_RATIO, (
            f"{row['dataset']}: auto chose {row['auto_method']} at "
            f"{row['auto_measured_seconds'] * 1e3:.2f}ms, "
            f"{row['ratio_vs_best']:.2f}x the best explicit method "
            f"{row['best_method']} "
            f"({row['best_measured_seconds'] * 1e3:.2f}ms)")


if __name__ == "__main__":  # pragma: no cover - manual run
    artifact = _run("tiny")
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    print(_render(artifact))
