"""E8 — Fig. 10: BCPar vs METIS-like partitioning on OR.

Paper shape: (a) BCPar's throughput consistently exceeds METIS's; (b)
inter-partition enumeration is markedly slower than intra for METIS,
while BCPar has no inter-partition penalty (no on-demand transfers at
all — its partitions are autonomous).
"""

from repro.bench.experiments import experiment_fig10
from repro.core.counts import BicliqueQuery


def test_fig10(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig10(dataset="OR", scale=bench_scale,
                                 queries=[BicliqueQuery(2, 2),
                                          BicliqueQuery(3, 3),
                                          BicliqueQuery(4, 4)]),
        rounds=1, iterations=1)
    save_artifact("fig10", result.text)
    for qs, cell in result.data.items():
        assert cell["bcpar"].on_demand_transfer_words == 0, qs
        assert cell["bcpar_throughput"] > cell["metis_throughput"], qs
        me_intra, me_inter = cell["metis_split"]
        if cell["metis"].inter_count > 0 and cell["metis"].intra_count > 0:
            assert me_inter < me_intra, qs
