"""Parallel- vs serial-fast wall-clock scaling on the medium graph.

The sharded engine's promise: counts bit-identical to a serial ``fast``
run, with wall-clock dropping as workers are added.  Measured on the
same 2k x 2k / 20k-edge power-law workload as the backend-speedup
benchmark, at (p, q) = (3, 3), over 1/2/4 worker processes with the
weighted-greedy static placement (the ``par`` default).

The >= 1.5x-at-4-workers assertion needs hardware that can actually run
four processes at once; on smaller machines the benchmark still runs,
records the artifact, and then skips the bar.  Runs as part of the slow
benchmark suite (``pytest -m "" benchmarks``) or directly:
``python benchmarks/test_parallel_speedup.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import BicliqueQuery, ParallelBackend, bcl_count, power_law_bipartite

NUM_U = NUM_V = 2000
NUM_EDGES = 20000
QUERY = BicliqueQuery(3, 3)
WORKER_COUNTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _measure():
    graph = power_law_bipartite(NUM_U, NUM_V, NUM_EDGES, seed=42,
                                name="medium-pl")
    t0 = time.perf_counter()
    serial = bcl_count(graph, QUERY, backend="fast")
    serial_secs = time.perf_counter() - t0
    rows = [("fast", 0, serial.count, serial_secs, 1.0)]
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        par = bcl_count(graph, QUERY, backend=ParallelBackend(workers))
        secs = time.perf_counter() - t0
        rows.append((f"par/{workers}", workers, par.count, secs,
                     serial_secs / secs))
    return rows


def _render(rows) -> str:
    lines = [f"Parallel scaling — {NUM_U}x{NUM_V}, {NUM_EDGES} edges, "
             f"(p,q)={QUERY}, BCL, {_usable_cpus()} usable CPUs",
             f"{'engine':<8} {'count':>14} {'wall [s]':>9} "
             f"{'vs fast':>8}"]
    for name, _, count, secs, speedup in rows:
        lines.append(f"{name:<8} {count:>14} {secs:>9.2f} {speedup:>7.2f}x")
    return "\n".join(lines)


def test_parallel_speedup(save_artifact):
    rows = _measure()
    save_artifact("parallel_speedup", _render(rows))
    counts = {count for _, _, count, _, _ in rows}
    # bit-identical counts for every worker count is the hard guarantee
    assert len(counts) == 1, f"engines disagree: {counts}"
    cpus = _usable_cpus()
    if cpus < 4:
        pytest.skip(f"scaling bar needs >= 4 usable CPUs, have {cpus} "
                    "(counts verified, artifact recorded)")
    by_workers = {workers: speedup for _, workers, _, _, speedup in rows}
    assert by_workers[4] >= MIN_SPEEDUP_AT_4, (
        f"4-worker speedup {by_workers[4]:.2f}x below the "
        f"{MIN_SPEEDUP_AT_4}x bar")


if __name__ == "__main__":  # pragma: no cover - manual run
    print(_render(_measure()))
