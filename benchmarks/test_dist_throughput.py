"""Distributed serving throughput: the topology × size benchmark grid.

The distributed tier's promise: at 4 workers the aggregate served
throughput on the zipf mixed workload is at least **2x** the 1-worker
(in-process) baseline — with every served count bit-identical to a
direct ``count(...)`` call, and the partitioned fan-out/merge path
equal to whole-graph counts bit for bit.

The 2x bar is asserted on hosts with >= 4 usable CPUs; smaller machines
still run the full grid, verify bit-identical counts, record the JSON
artifact (``BENCH_dist.json``), and then skip the bar.  Runs in the
slow benchmark suite (``pytest -m "" benchmarks``) or directly:
``python benchmarks/test_dist_throughput.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dist.bench import dist_bench
from repro.obs.schema import validate_artifact
from repro.parallel.sharding import default_workers
from repro.service.bench import write_artifact

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
MIN_SPEEDUP = 2.0
MIN_CPUS_FOR_BAR = 4

TOPOLOGIES = (1, 2, 4)
SIZES = ("small", "medium")
REPETITIONS = 2
NUM_QUERIES = 160


def run_grid() -> dict:
    return dist_bench(topologies=TOPOLOGIES, sizes=SIZES,
                      repetitions=REPETITIONS, num_queries=NUM_QUERIES,
                      clients=8, zipf_s=1.1, backend="fast",
                      method="GBC", replication=2, seed=17,
                      verify=True)


def _render(artifact: dict) -> str:
    lines = [
        f"Distributed serving — topology × size grid "
        f"({NUM_QUERIES} queries × {REPETITIONS} reps, "
        f"{artifact['host']['usable_cpus']} usable CPUs, backend "
        f"{artifact['workload']['backend']})",
        f"{'size':<8} {'topo':>5} {'rep':>4} {'served':>7} "
        f"{'qps':>9} {'p95 ms':>8} {'fail':>6}",
    ]
    for r in artifact["rows"]:
        lines.append(
            f"{r['graph_size']:<8} {r['topology']:>4}w {r['repetition']:>4} "
            f"{r['completed']:>7} {r['throughput_qps']:>9.1f} "
            f"{r['p95_ms']:>8.1f} {r['failure_rate']:>6.3f}")
    for size, speedup in sorted(artifact["speedup_vs_1w"].items()):
        lines.append(f"speedup vs 1 worker ({size}, "
                     f"{artifact['topologies'][-1]}w): {speedup:.2f}x")
    lines.append(f"partitioned fan-out exact: "
                 f"{artifact['partitioned']['exact']}")
    return "\n".join(lines)


def test_dist_throughput_grid(save_artifact):
    artifact = run_grid()
    write_artifact(artifact, ARTIFACT_DIR / "BENCH_dist.json")
    save_artifact("dist_throughput", _render(artifact))
    validate_artifact(artifact, name="BENCH_dist.json")

    # the hard guarantees first: distribution never changes an answer
    for row in artifact["rows"]:
        assert row["mismatches"] == [], row
        assert row["completed"] == row["issued"], row
        assert row["failed"] == 0, row
    assert artifact["partitioned"]["exact"], artifact["partitioned"]
    # every grid point ran: topologies × sizes × repetitions rows
    assert len(artifact["rows"]) == \
        len(TOPOLOGIES) * len(SIZES) * REPETITIONS

    cpus = default_workers()
    if cpus < MIN_CPUS_FOR_BAR:
        pytest.skip(f"throughput bar needs >= {MIN_CPUS_FOR_BAR} usable "
                    f"CPUs, have {cpus} (counts verified, artifact "
                    f"recorded, measured max speedup "
                    f"{artifact['max_speedup']:.2f}x)")
    assert artifact["max_speedup"] >= MIN_SPEEDUP, (
        f"best aggregate speedup over the 1-worker baseline is "
        f"{artifact['max_speedup']:.2f}x "
        f"({artifact['speedup_vs_1w']}), below the {MIN_SPEEDUP}x bar")


if __name__ == "__main__":      # pragma: no cover - manual invocation
    art = run_grid()
    write_artifact(art, ARTIFACT_DIR / "BENCH_dist.json")
    print(_render(art))
    print(json.dumps({"max_speedup": art["max_speedup"],
                      "mismatches": sum(len(r["mismatches"])
                                        for r in art["rows"])}))
