"""E6 — Table III: GBC counting time on (un)reordered graphs.

Paper shape: both reorderings beat no-reorder everywhere (Gorder avg
2.4x, Border avg 3.1x) and Border beats Gorder on every dataset (37%
average).  Divergence note (recorded in EXPERIMENTS.md): the paper runs
the *unipartite* Gorder, which mangles bipartite id spaces; our
comparator is a bipartite-aware transcription and is therefore stronger
than what the paper compared against, so Border's universal win over
Gorder does not fully carry over.  What we assert: Border beats
no-reorder on every dataset with a solid mean gain, and stays in
Gorder's ballpark on average.
"""

import numpy as np

from repro.bench.experiments import experiment_table3


def test_table3(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_table3(
            datasets=("YT", "BC", "GH", "SO", "YL", "ID", "S1", "S2"),
            scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("table3", result.text)
    border_gain, gorder_gain = [], []
    border_wins = 0
    for ds, cells in result.data.items():
        assert cells["border"] <= cells["none"] * 1.02, ds
        border_gain.append(cells["none"] / cells["border"])
        gorder_gain.append(cells["none"] / cells["gorder"])
        if cells["border"] <= cells["gorder"]:
            border_wins += 1
    assert float(np.mean(border_gain)) > 1.2
    assert float(np.mean(border_gain)) >= 0.85 * float(np.mean(gorder_gain))
    assert border_wins >= 2  # Border still wins on several datasets
