"""Fast- vs simulated-backend wall-clock speedup on a medium graph.

The kernel-backend layer's promise: identical counts, with the fast
engine at least 3x quicker in wall-clock time because every piece of
instrumentation (transaction charging, comparison cells, slot
accounting, timers) is compiled out.  Measured on the ISSUE's medium
workload — a 2k x 2k, 20k-edge power-law bipartite graph at (p,q)=(3,3),
which holds ~1.3e9 bicliques (a uniform random graph of that density
holds none, so the skewed generator is the meaningful stand-in).

Runs as part of the slow benchmark suite (``pytest -m "" benchmarks``)
or directly: ``python benchmarks/test_backend_speedup.py``.
"""

from __future__ import annotations

import time

from repro import BicliqueQuery, bcl_count, gbc_count, power_law_bipartite

NUM_U = NUM_V = 2000
NUM_EDGES = 20000
QUERY = BicliqueQuery(3, 3)
MIN_GBC_SPEEDUP = 3.0


def _measure():
    graph = power_law_bipartite(NUM_U, NUM_V, NUM_EDGES, seed=42,
                                name="medium-pl")
    rows = []
    for name, fn in (("GBC", gbc_count), ("BCL", bcl_count)):
        t0 = time.perf_counter()
        sim = fn(graph, QUERY)
        sim_secs = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = fn(graph, QUERY, backend="fast")
        fast_secs = time.perf_counter() - t0
        rows.append((name, sim.count, fast.count, sim_secs, fast_secs))
    return rows


def _render(rows) -> str:
    lines = [f"Backend speedup — {NUM_U}x{NUM_V}, {NUM_EDGES} edges, "
             f"(p,q)={QUERY}",
             f"{'method':<6} {'count':>14} {'sim [s]':>9} "
             f"{'fast [s]':>9} {'speedup':>8}"]
    for name, sim_count, fast_count, sim_secs, fast_secs in rows:
        assert sim_count == fast_count
        lines.append(f"{name:<6} {sim_count:>14} {sim_secs:>9.2f} "
                     f"{fast_secs:>9.2f} {sim_secs / fast_secs:>7.1f}x")
    return "\n".join(lines)


def test_backend_speedup(save_artifact):
    rows = _measure()
    save_artifact("backend_speedup", _render(rows))
    for name, sim_count, fast_count, sim_secs, fast_secs in rows:
        # identical counts on the same graph is the hard guarantee
        assert sim_count == fast_count
        # the fast engine must never lose to the instrumented one
        assert fast_secs < sim_secs
    gbc_name, _, _, gbc_sim, gbc_fast = rows[0]
    assert gbc_name == "GBC"
    assert gbc_sim / gbc_fast >= MIN_GBC_SPEEDUP, (
        f"GBC fast-backend speedup {gbc_sim / gbc_fast:.2f}x "
        f"below the {MIN_GBC_SPEEDUP}x bar")


if __name__ == "__main__":  # pragma: no cover - manual run
    print(_render(_measure()))
