"""E9 — Table V (appendix): component cost breakdown of GBC.

Paper shape: HTB transformation is tens-to-hundreds of milliseconds and a
tiny fraction of counting on intersection-heavy datasets; Border reorder
costs more but amortises across (p, q) queries.  We assert the HTB
transform is small relative to the end-to-end pipeline on every dataset.
"""

from repro.bench.experiments import experiment_table5


def test_table5(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_table5(
            datasets=("YT", "BC", "GH", "SO", "YL", "ID", "S1", "S2"),
            scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("table5", result.text)
    for ds, comp in result.data.items():
        total = comp["htb_transform"] + comp["reorder"] + comp["counting"]
        assert comp["htb_transform"] > 0, ds
        assert comp["htb_transform"] < 0.5 * total, ds
        assert comp["reorder"] > 0, ds
