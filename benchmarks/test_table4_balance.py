"""E7 — Table IV: load-balancing strategy comparison.

Paper shape: both single strategies beat "No Balance"; pre-runtime beats
runtime-only; the joint strategy is best in most scenarios (strictly so
under heavy workloads).
"""


from repro.bench.experiments import experiment_table4


def test_table4(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_table4(datasets=("SO", "S2", "BC", "LF", "FR"),
                                  scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("table4", result.text)
    joint_wins = 0
    for ds, cells in result.data.items():
        assert cells["pre"] <= cells["none"] * 1.05, ds
        assert cells["runtime"] <= cells["none"] * 1.05, ds
        assert cells["joint"] <= cells["none"] * 1.05, ds
        # pre-runtime's fine-grained split beats coarse runtime stealing
        assert cells["pre"] <= cells["runtime"] * 1.10, ds
        if cells["joint"] <= min(cells["pre"], cells["runtime"]) * 1.001:
            joint_wins += 1
    assert joint_wins >= 3  # joint best in most scenarios
