"""Design-choice ablations beyond the paper's NH/NB/NW (DESIGN.md §8).

Three sweeps over GBC's tunables, each checking the design rationale:

* **shared-memory buffer size** — larger buffers allow bigger BFS batches
  (§IV's batching); utilisation should not degrade as the buffer grows,
  and tiny buffers must still count correctly.
* **HTB word width** — 32-bit words are the paper's choice; 8-bit words
  fragment the index (more words), 64-bit words pack better only on dense
  ids.  We measure the words/1-block trade-off across widths.
* **warp width** — wider warps amortise lock-step rounds but waste lanes
  on short candidate lists; utilisation should fall monotonically with
  width on sparse data.
"""

from dataclasses import replace


from repro.bench.datasets import load_dataset
from repro.bench.tables import render_table
from repro.core.counts import BicliqueQuery
from repro.core.gbc import gbc_count
from repro.gpu.device import rtx_3090
from repro.htb.htb import htb_from_graph

QUERY = BicliqueQuery(3, 3)


def test_ablation_shared_memory(benchmark, bench_scale, save_artifact):
    graph = load_dataset("YT", bench_scale)
    sizes = [256, 2048, 16 * 1024, 48 * 1024]

    def run():
        rows = []
        out = {}
        counts = set()
        for sm in sizes:
            spec = replace(rtx_3090(), shared_mem_per_block=sm)
            res = gbc_count(graph, QUERY, spec=spec)
            counts.add(res.count)
            out[sm] = res
            rows.append([f"{sm}B", f"{res.metrics.utilization * 100:.1f}%",
                         res.metrics.global_transactions,
                         f"{res.device_seconds * 1e3:.3f}ms"])
        assert len(counts) == 1, "buffer size changed the count"
        return out, render_table(
            "Ablation — shared-memory buffer vs batching",
            ["buffer", "utilisation", "transactions", "time"], rows)

    out, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_shared_memory", text)
    # bigger buffers batch more children: utilisation must not degrade
    utils = [out[s].metrics.utilization for s in sizes]
    assert utils[-1] >= utils[0] * 0.99


def test_ablation_word_bits(benchmark, bench_scale, save_artifact):
    graph = load_dataset("YT", bench_scale)
    widths = [8, 16, 32, 64]

    def run():
        rows = []
        words = {}
        for w in widths:
            htb = htb_from_graph(graph, "U", word_bits=w)
            words[w] = htb.total_words
            rows.append([w, htb.total_words, htb.one_block_count(),
                         f"{htb.density():.2f}"])
        return words, render_table(
            "Ablation — HTB word width",
            ["bits", "words", "1-blocks", "vertices/word"], rows)

    words, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_word_bits", text)
    # narrower words always need at least as many words
    assert words[8] >= words[16] >= words[32] >= words[64]


def test_ablation_warp_width(benchmark, bench_scale, save_artifact):
    graph = load_dataset("SO", bench_scale)
    widths = [8, 16, 32, 64]

    def run():
        rows = []
        utils = {}
        counts = set()
        for w in widths:
            spec = replace(rtx_3090(), warp_size=w,
                           transaction_bytes=4 * w)
            res = gbc_count(graph, BicliqueQuery(3, 3), spec=spec,
                            options=None)
            counts.add(res.count)
            utils[w] = res.metrics.utilization
            rows.append([w, f"{res.metrics.utilization * 100:.1f}%",
                         res.metrics.global_transactions])
        assert len(counts) == 1
        return utils, render_table(
            "Ablation — warp width on a sparse dataset",
            ["warp", "utilisation", "transactions"], rows)

    utils, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_warp_width", text)
    assert utils[64] <= utils[8] * 1.01  # wider warps never help occupancy
