"""Mutation throughput: incremental maintenance vs rebuild-per-edit.

The streaming promise of ``repro.dynamic``: on every Table II stand-in,
a :class:`~repro.dynamic.DynamicGraphSession` tracking the benchmark
shapes sustains at least **5x** the edits/sec of the pre-dynamic
workflow — rebuild the CSR graph and recount every shape after each
edit — at single-edit granularity, with every per-prefix count
bit-identical between the two arms (and a final full-recount check).

The artifact (``BENCH_mutate.json``) also records a mixed read/write
serving drive: a scheduler over dynamic pool entries answering reads
from epoch-pinned snapshots while a fraction of draws toggle edges.

Runs in the slow benchmark suite (``pytest -m "" benchmarks``) or
directly: ``python benchmarks/test_mutate_throughput.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.datasets import list_datasets, load_dataset
from repro.service import SchedulerConfig, WorkloadSpec, mutate_bench
from repro.service.bench import write_artifact

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
MIN_SPEEDUP = 5.0
SHAPES = ((2, 2), (2, 3), (3, 3))


def run_bench(scale: str) -> dict:
    graphs = {key: load_dataset(key, scale) for key in list_datasets()}
    spec = WorkloadSpec(graphs=tuple(sorted(graphs)), shapes=SHAPES,
                        num_queries=120, clients=8, method="GBC",
                        mutate_fraction=0.15, seed=5)
    return mutate_bench(
        graphs, shapes=SHAPES, edits=200, rebuild_limit=8,
        method="GBC", backend="fast", seed=5, serve_spec=spec,
        config=SchedulerConfig(batch_window=0.002, backend="fast"))


def _render(artifact: dict) -> str:
    lines = [
        f"Mutation throughput — {artifact['edits']} single-edge toggles "
        f"per stand-in, shapes {artifact['shapes']}, backend "
        f"{artifact['backend']}",
        f"{'graph':<6} {'edges':>7} {'incr e/s':>10} {'rebuild e/s':>12} "
        f"{'speedup':>8} {'cutovers':>9}",
    ]
    for g in artifact["graphs"]:
        lines.append(
            f"{g['graph']:<6} {g['num_edges_start']:>7} "
            f"{g['incremental_edits_per_s']:>10.1f} "
            f"{g['rebuild_edits_per_s']:>12.1f} "
            f"{g['speedup_vs_rebuild']:>8.1f} "
            f"{g['dynamic_stats']['cutover_deferrals']:>9}")
    serve = artifact.get("serve")
    if serve:
        s = serve["served"]
        lines.append(f"mixed drive: {s['completed']} reads, "
                     f"{s['mutations']} mutations, {s['failed']} failed, "
                     f"{s['throughput_qps']:.1f} qps")
    lines.append(f"min speedup vs rebuild-per-edit: "
                 f"{artifact['min_speedup_vs_rebuild']:.1f}x "
                 f"(bar {MIN_SPEEDUP}x); "
                 f"mismatches: {artifact['mismatches']}")
    return "\n".join(lines)


def test_mutate_throughput(bench_scale, save_artifact):
    artifact = run_bench(bench_scale)
    write_artifact(artifact, ARTIFACT_DIR / "BENCH_mutate.json")
    save_artifact("mutate_throughput", _render(artifact))

    # the hard guarantee first: incremental never changes an answer
    assert artifact["mismatches"] == 0
    serve = artifact["serve"]["served"]
    assert serve["failed"] == 0
    assert serve["mutations"] > 0

    # a rate comparison is CPU-count independent: both arms are
    # single-threaded, so the bar holds on any host
    failing = [(g["graph"], g["speedup_vs_rebuild"])
               for g in artifact["graphs"]
               if g["speedup_vs_rebuild"] < MIN_SPEEDUP]
    assert not failing, (
        f"stand-ins below the {MIN_SPEEDUP}x single-edit bar: {failing}")


if __name__ == "__main__":      # pragma: no cover - manual invocation
    art = run_bench(os.environ.get("REPRO_BENCH_SCALE", "bench"))
    write_artifact(art, ARTIFACT_DIR / "BENCH_mutate.json")
    print(_render(art))
    print(json.dumps({"min_speedup_vs_rebuild":
                      art["min_speedup_vs_rebuild"],
                      "mismatches": art["mismatches"]}))
