"""E3 — Fig. 7: overall performance of GBC vs GBL, BCLP, BCL.

Paper shape: GBC is fastest in every cell; average speedups 505x over
BCL, 147x over BCLP, 16x over GBL on real hardware.  Absolute factors are
platform-bound (our CPU baselines run in Python, the device is simulated),
so we assert ordering and that the mean speedups are substantial:
mean(BCL/GBC) > mean(BCLP/GBC) > 1 and mean(GBL/GBC) > 1.
"""

import numpy as np

from repro.bench.experiments import experiment_fig7


def test_fig7(benchmark, bench_scale, save_artifact):
    result = benchmark.pedantic(
        lambda: experiment_fig7(datasets=("YT", "BC", "GH", "YL", "S2"),
                                scale=bench_scale),
        rounds=1, iterations=1)
    save_artifact("fig7", result.text)
    speedups = {m: float(np.mean(v))
                for m, v in result.data["speedups"].items()}
    # GBC wins on average against every baseline
    for method, mean_speedup in speedups.items():
        assert mean_speedup > 1.0, (method, mean_speedup)
    # CPU sequential is the slowest, its parallel version in between
    assert speedups["BCL"] > speedups["BCLP"] > 1.0
    # the naive GPU port loses to GBC clearly
    assert speedups["GBL"] > 1.5
