"""Extension ablation: intersection strategy shoot-out.

Three device intersection strategies under identical transaction
accounting, over adjacency-list workloads sampled from a stand-in:

* parallel **binary search** (the GBL baseline, [21]),
* **hash probing** (the TRUST-style comparator, [34]),
* **HTB** bitmap AND (the paper's contribution, §V-A).

Paper-aligned expectation: HTB needs the fewest memory transactions;
hashing needs fewer comparisons than binary search on long lists but
pays table-build traffic and storage.
"""

import numpy as np

from repro.bench.datasets import load_dataset
from repro.bench.tables import render_table
from repro.gpu.device import rtx_3090
from repro.gpu.hashjoin import build_hash_table, hash_intersect
from repro.gpu.intersect import binary_search_intersect
from repro.gpu.metrics import KernelMetrics
from repro.htb.htb import BitmapSet, intersect_device


def test_intersection_strategies(benchmark, bench_scale, save_artifact):
    graph = load_dataset("YL", bench_scale)
    rng = np.random.default_rng(0)

    def workload():
        """(keys, list) pairs shaped like CR-update intersections."""
        pairs = []
        for _ in range(200):
            u = int(rng.integers(0, graph.num_u))
            w = int(rng.integers(0, graph.num_u))
            a, b = graph.neighbors("U", u), graph.neighbors("U", w)
            if len(a) and len(b):
                pairs.append((a, b) if len(a) <= len(b) else (b, a))
        return pairs

    def run():
        pairs = workload()
        spec = rtx_3090()
        mb, mh, mt = KernelMetrics(), KernelMetrics(), KernelMetrics()
        for keys, lst in pairs:
            r1 = binary_search_intersect(keys, lst, spec, mb)
            table = build_hash_table(lst, spec, metrics=mh)
            r2 = hash_intersect(keys, table, spec, mh)
            r3 = intersect_device(BitmapSet.from_vertices(keys),
                                  BitmapSet.from_vertices(lst), spec, mt)
            assert np.array_equal(r1, r2)
            assert np.array_equal(r1, r3.vertices())
        rows = [
            ["binary-search", mb.global_transactions, mb.comparisons,
             mb.bitwise_ops],
            ["hash-probe", mh.global_transactions, mh.comparisons,
             mh.bitwise_ops],
            ["HTB", mt.global_transactions,
             mt.comparisons, mt.bitwise_ops],
        ]
        text = render_table(
            f"Ablation — intersection strategies on {graph.name} "
            f"({len(pairs)} list pairs)",
            ["strategy", "transactions", "comparisons", "bitwise ANDs"],
            rows)
        return (mb, mh, mt), text

    (mb, mh, mt), text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_intersection", text)
    # the paper's §V-A claim, measured: HTB minimises memory transactions
    assert mt.global_transactions < mb.global_transactions
    assert mt.global_transactions < mh.global_transactions
    # and replaces element comparisons with a few bitwise ANDs
    assert mt.comparisons < mb.comparisons
    assert mt.bitwise_ops > 0
