"""Approx-tier speedup vs the best exact plan, with error bars.

The sampling tier's promise is a *trade*, so the benchmark measures
both sides of it: on graphs in the regime root-sampling is built for
(large promising-root populations, hundreds of roots of comparable
weight), a sub-population sample budget must beat the best exact plan
by at least ``MIN_SPEEDUP`` (5x) while keeping the median relative
error across ``SEEDS`` fixed seeds at or below ``MAX_REL_ERROR``
(10%).  The estimate itself is seed-deterministic, so the error side
of the bar can never flake; only wall time varies run to run.

A deliberately cheap (2, 2) cell rides along informationally: exact
counting is so fast there that sampling cannot pay — the artifact
reports that honestly instead of hiding the regime boundary.

Results land in ``benchmarks/artifacts/BENCH_approx.json`` — the
artifact the CI ``approx-accuracy`` job uploads.  Runs as part of the
slow benchmark suite (``pytest -m "" benchmarks``) or directly:
``python benchmarks/test_approx_speedup.py``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core.counts import BicliqueQuery
from repro.core.estimate import estimate_count
from repro.graph.generators import random_bipartite
from repro.plan import Planner, execute_plan
from repro.query import GraphSession

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "BENCH_approx.json"
#: the CI bars, enforced on every barred (graph, shape) cell
MIN_SPEEDUP = 5.0
MAX_REL_ERROR = 0.10
#: fixed seeds the error bar is a median over — one seed's estimate is
#: itself a random draw; five pinned draws make the bar a property of
#: the estimator, not of one lucky stream
SEEDS = (0, 1, 2, 3, 4)

#: (name, graph builder, per-graph sample budget).  Budgets are sized
#: so the distinct-root cache enumerates roughly a tenth of the
#: population — far enough under it that the speedup bar holds with
#: margin on loaded CI runners, large enough that the median error
#: still sits at about half the 10% bar
GRAPHS = (
    ("uniform-600", lambda: random_bipartite(600, 450, 16000, seed=13), 48),
    ("uniform-700", lambda: random_bipartite(700, 520, 20000, seed=17), 52),
    ("uniform-800", lambda: random_bipartite(800, 600, 24000, seed=21), 60),
)
#: the barred shape (the expensive cell) and the informational one
BAR_QUERY = BicliqueQuery(3, 3)
INFO_QUERY = BicliqueQuery(2, 2)


def _measure_cell(graph, session, query, samples: int,
                  barred: bool) -> dict:
    plan = Planner(graph, session=session).plan(query)
    execute_plan(plan, graph, query, session=session)         # warm
    t0 = time.perf_counter()
    exact = execute_plan(plan, graph, query, session=session)
    exact_seconds = time.perf_counter() - t0

    runs = []
    for seed in SEEDS:
        t0 = time.perf_counter()
        est = estimate_count(graph, query, samples=samples, seed=seed,
                             session=session, backend=plan.backend)
        seconds = time.perf_counter() - t0
        runs.append({"seed": seed, "estimate": est.estimate,
                     "std_error": est.std_error, "ci95": est.ci95,
                     "rel_error": est.relative_error(exact.count),
                     "seconds": seconds})
    mean_seconds = statistics.mean(r["seconds"] for r in runs)
    return {
        "query": [query.p, query.q],
        "barred": barred,
        "exact": {"method": plan.method, "backend": plan.backend,
                  "count": exact.count, "seconds": exact_seconds},
        "approx": {"samples": samples, "population": est.population,
                   "runs": runs,
                   "median_rel_error": statistics.median(
                       r["rel_error"] for r in runs),
                   "mean_seconds": mean_seconds,
                   "speedup": exact_seconds / mean_seconds},
    }


def _run() -> dict:
    rows = []
    for name, build, samples in GRAPHS:
        graph = build()
        session = GraphSession(graph)
        rows.append({
            "graph": name,
            "num_u": graph.num_u, "num_v": graph.num_v,
            "num_edges": graph.num_edges,
            "cells": [
                _measure_cell(graph, session, INFO_QUERY,
                              samples, barred=False),
                _measure_cell(graph, session, BAR_QUERY,
                              samples, barred=True),
            ],
        })
    return {
        "kind": "approx_speedup",
        "min_speedup": MIN_SPEEDUP,
        "max_rel_error": MAX_REL_ERROR,
        "seeds": list(SEEDS),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graphs": rows,
    }


def _render(artifact: dict) -> str:
    lines = [f"Approx tier vs best exact plan — median rel. error over "
             f"{len(artifact['seeds'])} seeds, bars on the (3,3) cells",
             f"{'graph':<12} {'shape':>6} {'exact':>10} {'approx':>10} "
             f"{'x':>6} {'rel.err':>8}  bar"]
    for row in artifact["graphs"]:
        for cell in row["cells"]:
            ap = cell["approx"]
            lines.append(
                f"{row['graph']:<12} "
                f"({cell['query'][0]},{cell['query'][1]}){'':>2} "
                f"{cell['exact']['seconds'] * 1e3:>9.1f}m "
                f"{ap['mean_seconds'] * 1e3:>9.1f}m "
                f"{ap['speedup']:>5.1f}x "
                f"{ap['median_rel_error'] * 100:>7.1f}% "
                f" {'yes' if cell['barred'] else 'info'}")
    return "\n".join(lines)


def test_approx_speedup(save_artifact):
    artifact = _run()
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    save_artifact("approx_speedup", _render(artifact))
    for row in artifact["graphs"]:
        for cell in row["cells"]:
            if not cell["barred"]:
                continue
            ap = cell["approx"]
            assert ap["median_rel_error"] <= MAX_REL_ERROR, (
                f"{row['graph']}: median relative error "
                f"{ap['median_rel_error']:.3f} above the "
                f"{MAX_REL_ERROR:.0%} bar")
            assert ap["speedup"] >= MIN_SPEEDUP, (
                f"{row['graph']}: approx speedup {ap['speedup']:.2f}x "
                f"below the {MIN_SPEEDUP}x bar "
                f"(exact {cell['exact']['seconds'] * 1e3:.0f}ms, "
                f"approx {ap['mean_seconds'] * 1e3:.0f}ms)")
            # the sample budget must actually be sampling
            assert ap["samples"] < ap["population"]


if __name__ == "__main__":  # pragma: no cover - manual run
    artifact = _run()
    ARTIFACT_PATH.parent.mkdir(exist_ok=True)
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                             + "\n", encoding="utf-8")
    print(_render(artifact))
