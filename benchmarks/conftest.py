"""Benchmark-harness configuration.

Every benchmark regenerates one paper artifact (a table or figure) at the
``bench`` dataset scale, prints the rendered text, saves it under
``benchmarks/artifacts/``, and asserts the paper's qualitative shape.
Set ``REPRO_BENCH_SCALE=tiny`` for a fast smoke run or ``full`` for the
larger stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def pytest_collection_modifyitems(items):
    """Every benchmark regenerates a full paper artifact — minutes, not
    seconds — so the whole directory carries the ``slow`` marker and is
    excluded from the default (tier-1) run.  Run ``pytest -m ""`` for the
    full suite.

    The hook fires for the whole session's items, so restrict the marker
    to tests that actually live under ``benchmarks/``.
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def save_artifact():
    ARTIFACT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (ARTIFACT_DIR / f"{name}.txt").write_text(text + "\n",
                                                  encoding="utf-8")
        print("\n" + text)

    return _save
