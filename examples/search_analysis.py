"""Analysis toolkit tour: profiler, sampling estimator, local counts.

Three capabilities layered on the exact counting core:

* ``profile_search`` measures the per-depth shape of the search tree —
  the evidence behind the paper's hybrid DFS-BFS design (§IV: candidate
  sets shrink with depth, starving warps under pure DFS);
* ``estimate_count`` trades exactness for speed by sampling root search
  trees (Horvitz-Thompson, unbiased);
* ``local_biclique_counts`` attributes the count to individual vertices
  (the GNN-aggregation use case the paper motivates).
"""

from repro import BicliqueQuery, power_law_bipartite
from repro.core import (
    brute_force_count,
    estimate_count,
    local_biclique_counts,
    profile_search,
)


def main() -> None:
    graph = power_law_bipartite(num_u=220, num_v=160, num_edges=900,
                                seed=17, name="analysis")
    query = BicliqueQuery(3, 3)
    print(f"graph: {graph}, query {query}\n")

    # 1. search-tree shape (the hybrid-exploration evidence)
    profile = profile_search(graph, query)
    print("search-tree profile (per depth):")
    print(f"{'depth':>6} {'nodes':>8} {'mean|CL|':>10} {'mean|CR|':>10}")
    for lv in profile.levels:
        if lv.nodes:
            print(f"{lv.depth:>6} {lv.nodes:>8} {lv.mean_cl:>10.1f} "
                  f"{lv.mean_cr:>10.1f}")
    print(f"candidate shrink ratio (deepest/first): "
          f"{profile.shrink_ratio():.2f} — <1 means deep levels starve "
          "fixed-size thread groups, the problem local BFS batching fixes\n")

    # 2. sampled estimate vs truth
    truth = brute_force_count(graph, query)
    for samples in (8, 32, 128):
        est = estimate_count(graph, query, samples=samples, seed=1)
        print(f"estimate with {samples:>3} sampled roots: "
              f"{est.estimate:>12.0f}  (truth {truth}, "
              f"rel.err {est.relative_error(truth) * 100:.1f}%)")
    print()

    # 3. who participates most (aggregation weights)
    local = local_biclique_counts(graph, query)
    assert local.total == truth
    print("top-5 U vertices by biclique participation:")
    for vertex, count in local.top_vertices("U", k=5):
        print(f"  u{vertex}: {count} bicliques "
              f"(degree {graph.degree('U', vertex)})")


if __name__ == "__main__":
    main()
