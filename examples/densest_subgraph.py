"""(p, q)-biclique densest subgraph via greedy peeling.

The paper's headline application [33]: the (p, q)-biclique density of a
subgraph S is (#bicliques in S) / |S|, and the densest-subgraph search
repeatedly needs biclique *counts* — exactly what GBC accelerates.

This example implements the classic peeling heuristic: repeatedly remove
the vertex whose removal loses the fewest bicliques, tracking the best
density seen.  Every round is one biclique count, so the counter is the
inner loop.
"""

import numpy as np

from repro import BicliqueQuery, gbc_count, planted_bicliques
from repro.graph.bipartite import LAYER_U, LAYER_V


def biclique_density(graph, query) -> float:
    """(p, q)-biclique density of the whole graph [33]."""
    n = graph.num_u + graph.num_v
    if n == 0:
        return 0.0
    return gbc_count(graph, query).count / n


def peel_densest(graph, query, min_size: int = 4):
    """Greedy peeling: drop the lowest-degree vertex each round."""
    best_density = biclique_density(graph, query)
    best = graph
    current = graph
    while current.num_u + current.num_v > min_size:
        du = current.degrees(LAYER_U)
        dv = current.degrees(LAYER_V)
        if len(du) > 1 and (len(dv) <= 1 or du.min() <= dv.min()):
            keep_u = np.delete(np.arange(current.num_u), int(du.argmin()))
            keep_v = np.arange(current.num_v)
        else:
            keep_u = np.arange(current.num_u)
            keep_v = np.delete(np.arange(current.num_v), int(dv.argmin()))
        current = current.induced_subgraph(keep_u, keep_v, name="peeled")
        density = biclique_density(current, query)
        if density > best_density:
            best_density, best = density, current
    return best, best_density


def main() -> None:
    # a dense core (a planted 7x8 community) buried in noise
    graph = planted_bicliques(40, 50, [(7, 8)], noise_edges=240, seed=3,
                              name="noisy")
    query = BicliqueQuery(2, 3)

    whole = biclique_density(graph, query)
    print(f"graph: {graph}")
    print(f"(2,3)-biclique density of the whole graph: {whole:.2f}")

    best, density = peel_densest(graph, query)
    print(f"\npeeling result: |U|={best.num_u}, |V|={best.num_v}, "
          f"density={density:.2f}")
    print(f"density improvement: {density / max(whole, 1e-9):.1f}x")
    assert density >= whole
    # the survivor should be roughly the planted 7x8 core
    assert best.num_u + best.num_v <= 25, "peeling failed to localise"
    print("\nthe peeled subgraph isolates the planted dense community — "
          "each peeling round is one biclique count, the operation GBC "
          "makes cheap.")


if __name__ == "__main__":
    main()
