"""Recommendation-style workload: cohesion signals on a user-item graph.

The paper motivates (p, q)-biclique counting with recommender systems and
GNN aggregation [53]: groups of p users all interacting with the same q
items are the strongest co-preference signal there is (butterflies — the
(2,2) case — are the classic instance).

This example builds a synthetic user-item graph with planted co-purchase
communities plus noise, then:

1. counts butterflies two ways (wedge formula vs GBC) as a sanity check,
2. sweeps (p, q) to show how the signal sharpens as the clique grows,
3. ranks the planted communities by their observed biclique mass.
"""

import numpy as np

from repro import BicliqueQuery, butterfly_count, gbc_count, planted_bicliques


def build_user_item_graph(seed: int = 7):
    """Three co-purchase communities of different tightness, plus noise."""
    return planted_bicliques(
        num_u=60, num_v=80,
        plant_sizes=[(8, 10), (6, 6), (5, 12)],
        noise_edges=260,
        seed=seed,
        name="user-item")


def main() -> None:
    graph = build_user_item_graph()
    print(f"user-item graph: {graph}\n")

    # 1. butterflies, two independent ways
    wedge = butterfly_count(graph)
    gbc22 = gbc_count(graph, BicliqueQuery(2, 2))
    assert wedge.count == gbc22.count
    print(f"butterflies ((2,2)-bicliques): {wedge.count} "
          "(wedge formula and GBC agree)\n")

    # 2. sweep: bigger cliques isolate the planted structure from noise
    print(f"{'(p,q)':>8} {'count':>14}")
    for p, q in [(2, 2), (2, 4), (3, 3), (4, 4), (5, 5), (6, 6)]:
        res = gbc_count(graph, BicliqueQuery(p, q))
        print(f"({p},{q})".rjust(8) + f" {res.count:>14}")
    print("\nnoise dominates small patterns; only the planted communities "
          "survive at (5,5)+ — the reason cohesive-subgroup analysis wants "
          "larger (p, q) and therefore fast counting.\n")

    # 3. community strength: biclique mass inside each planted block
    blocks = [(range(0, 8), range(0, 10)),
              (range(8, 14), range(10, 16)),
              (range(14, 19), range(16, 28))]
    q = BicliqueQuery(3, 3)
    print("community ranking by (3,3)-biclique mass:")
    for i, (us, vs) in enumerate(blocks):
        sub = graph.induced_subgraph(np.fromiter(us, dtype=np.int64),
                                     np.fromiter(vs, dtype=np.int64),
                                     name=f"community-{i}")
        res = gbc_count(sub, q)
        print(f"  community {i}: |U|={sub.num_u} |V|={sub.num_v} "
              f"-> {res.count} (3,3)-bicliques")


if __name__ == "__main__":
    main()
