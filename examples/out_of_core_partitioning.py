"""Out-of-memory counting with BCPar (§VI of the paper).

When the graph (plus its 2-hop index) exceeds device memory, GBC splits
it with the biclique-aware partitioner BCPar: every partition stores the
full 1-/2-hop closure of its roots, so counting proceeds without any
on-demand host-device traffic.  This example partitions the OR stand-in
under a tight memory budget, validates the autonomy invariant, counts per
partition, and compares throughput against the cut-oriented (METIS-like)
baseline.
"""

from repro import BicliqueQuery, rtx_3090
from repro.bench.datasets import load_dataset
from repro.graph.bipartite import LAYER_U
from repro.graph.twohop import build_two_hop_index
from repro.partition.runner import (
    recommended_budget_words,
    run_bcpar,
    run_metis_like,
)


def main() -> None:
    graph = load_dataset("OR", scale="tiny")
    query = BicliqueQuery(3, 3)
    spec = rtx_3090()

    # memory budget: a quarter of the full footprint (floored so at least
    # one root's closure always fits)
    index = build_two_hop_index(graph, LAYER_U, query.q)
    budget = recommended_budget_words(graph, query.q, fraction=0.25)
    print(f"graph: {graph}")
    print(f"full footprint: {graph.num_edges + index.total_entries()} words; "
          f"budget: {budget} words\n")

    bc_report, pset = run_bcpar(graph, query, budget_words=budget)
    pset.validate(index)  # the communication-free invariant, checked
    print(f"BCPar: {pset.num_partitions} autonomous partitions, "
          f"replication factor {pset.replication_factor():.2f}")
    print(f"  count = {bc_report.total_count}")
    print(f"  up-front transfer: {bc_report.initial_transfer_words} words; "
          f"on-demand: {bc_report.on_demand_transfer_words} words "
          "(always zero for BCPar)")

    me_report, mres = run_metis_like(graph, query,
                                     num_parts=max(pset.num_partitions, 2))
    assert me_report.total_count == bc_report.total_count
    print(f"\nMETIS-like: {mres.num_parts} parts, "
          f"{mres.cut_edges} cut 2-hop edges")
    print(f"  up-front transfer: {me_report.initial_transfer_words} words; "
          f"on-demand: {me_report.on_demand_transfer_words} words")

    bc_tp = bc_report.throughput(spec)
    me_tp = me_report.throughput(spec)
    me_intra, me_inter = me_report.split_throughputs(spec)
    print(f"\nthroughput (bicliques per simulated second):")
    print(f"  BCPar      : {bc_tp:.3g}")
    print(f"  METIS-like : {me_tp:.3g}  "
          f"(intra {me_intra:.3g}, inter {me_inter:.3g})")
    print(f"  BCPar / METIS = {bc_tp / me_tp:.2f}x — the Fig. 10 result: "
          "communication-free partitions beat cut-oriented ones.")


if __name__ == "__main__":
    main()
