"""Batch queries: many (p, q) counts over one graph, prepared once.

Run with::

    python examples/batch_queries.py

A service answering (p, q)-biclique queries pays a large fixed cost per
graph — priority reordering, two-hop index construction, HTB
materialisation — before counting anything.  ``GraphSession`` builds
those structures lazily, exactly once, and ``batch_count`` amortises
them over a whole query batch; repeated queries are served from an LRU
result cache without recounting.
"""

from repro import (
    BicliqueQuery,
    GraphSession,
    batch_count,
    gbc_count,
    power_law_bipartite,
)


def main() -> None:
    graph = power_law_bipartite(num_u=300, num_v=200, num_edges=1100,
                                seed=42, name="batch-demo")
    print(f"graph: {graph}\n")

    # one session owns the prepared state; the batch shares it
    session = GraphSession(graph)
    batch = batch_count(session, "3x3,3x4,4x4", backend="fast")

    print("batch results (fast backend, shared precomputation):")
    for query, result in zip(batch.queries, batch.results):
        print(f"  {query}-bicliques: {result.count:>8}  "
              f"({result.wall_seconds * 1e3:.1f} ms)")

    s = batch.stats
    print(f"\nbuilt once for the whole batch: {s.wedge_builds} wedge "
          f"pass, {s.order_builds} reorder permutation(s), "
          f"{s.index_builds} two-hop index(es), "
          f"{s.htb_adj_builds + s.htb_two_hop_builds} HTB(s)")

    # every batched count is identical to its single-query equivalent
    for query, result in zip(batch.queries, batch.results):
        single = gbc_count(graph, query, backend="fast")
        assert result.count == single.count, query
    print("verified: every batched count equals its single-query run")

    # a warm session answers repeats from the result cache
    again = batch_count(session, ["3x4", "4x4", BicliqueQuery(3, 3)],
                        backend="fast")
    print(f"\nsecond batch on the warm session: {again.cache_hits} cache "
          f"hit(s), {again.cache_misses} miss(es)")
    assert again.cache_hits == 3 and again.cache_misses == 0
    assert sorted(again.counts) == sorted(batch.counts)


if __name__ == "__main__":
    main()
