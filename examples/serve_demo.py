"""Serving demo: concurrent clients, micro-batched counting, telemetry.

Run with::

    python examples/serve_demo.py

Spins up the serving subsystem over two generated graphs — a bounded
:class:`~repro.service.SessionPool` of prepared per-graph state behind a
micro-batching :class:`~repro.service.Scheduler` — then fires 200 mixed
(p, q) queries at it from 8 client threads and prints the telemetry
snapshot.  Every served count is verified against a direct single-query
call: batching and pooling change throughput, never answers.
"""

import json
import threading

from repro import (
    BicliqueQuery,
    Scheduler,
    SessionPool,
    gbc_count,
    power_law_bipartite,
    random_bipartite,
)

QUERIES_PER_CLIENT = 25
CLIENTS = 8
SHAPES = [(2, 2), (2, 3), (3, 3), (3, 2)]


def main() -> None:
    graphs = {
        "social": power_law_bipartite(num_u=300, num_v=200, num_edges=1100,
                                      seed=42, name="social"),
        "retail": random_bipartite(num_u=200, num_v=150, num_edges=800,
                                   seed=7, name="retail"),
    }
    pool = SessionPool(max_sessions=2)
    for name, graph in graphs.items():
        pool.register(name, graph)

    served: list[tuple[str, int, int, int]] = []
    lock = threading.Lock()

    def client(client_id: int, scheduler: Scheduler) -> None:
        for i in range(QUERIES_PER_CLIENT):
            name = "social" if (client_id + i) % 3 else "retail"
            p, q = SHAPES[(client_id * 7 + i) % len(SHAPES)]
            result = scheduler.submit(name, p, q).result(timeout=60)
            with lock:
                served.append((name, p, q, result.count))

    with Scheduler(pool, batch_window=0.002, workers=2,
                   backend="fast") as scheduler:
        threads = [threading.Thread(target=client, args=(i, scheduler))
                   for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = scheduler.telemetry.snapshot()

    total = QUERIES_PER_CLIENT * CLIENTS
    assert len(served) == total, (len(served), total)
    print(f"served {len(served)} queries from {CLIENTS} client threads "
          f"over {len(graphs)} pooled graphs\n")

    print("telemetry snapshot:")
    print(json.dumps(snapshot, indent=2, sort_keys=True))

    # bit-identical to direct single-query calls, for every request
    direct = {(name, p, q): gbc_count(graphs[name], BicliqueQuery(p, q),
                                      backend="fast").count
              for name, p, q in {(n, p, q) for n, p, q, _ in served}}
    assert all(count == direct[name, p, q]
               for name, p, q, count in served)
    print(f"\nverified: all {len(served)} served counts are bit-identical "
          f"to direct runs over {len(direct)} distinct (graph, p, q)")
    assert snapshot["completed"] == total
    assert snapshot["batches"]["mean_size"] > 1.0, \
        "micro-batching never coalesced anything"
    print(f"micro-batching: {snapshot['batches']['count']} batches, "
          f"mean size {snapshot['batches']['mean_size']:.1f}, "
          f"max {snapshot['batches']['max_size']}")


if __name__ == "__main__":
    main()
