"""Quickstart: count (p, q)-bicliques with GBC on the simulated device.

Run with::

    python examples/quickstart.py

Builds a small power-law bipartite graph, counts (3, 4)-bicliques with
the full GBC pipeline and with the CPU baseline BCL, verifies they agree,
and prints the device-model diagnostics the paper's evaluation revolves
around (memory transactions, thread utilisation, simulated runtime).
"""

from repro import (
    BicliqueQuery,
    bcl_count,
    gbc_count,
    gbl_count,
    power_law_bipartite,
    rtx_3090,
)


def main() -> None:
    graph = power_law_bipartite(num_u=400, num_v=250, num_edges=1500,
                                seed=42, name="quickstart")
    query = BicliqueQuery(3, 4)
    spec = rtx_3090()

    print(f"graph: {graph}")
    print(f"query: (p, q) = {query}\n")

    cpu = bcl_count(graph, query)
    print(f"BCL (CPU state of the art): {cpu.count} bicliques "
          f"in {cpu.wall_seconds:.3f}s wall")
    print(f"  time in set intersections: "
          f"{cpu.breakdown['intersection_fraction'] * 100:.1f}%  "
          "(the bottleneck Fig. 1(b) motivates)")

    naive = gbl_count(graph, query, spec=spec)
    full = gbc_count(graph, query, spec=spec)
    assert cpu.count == naive.count == full.count, "counters disagree!"

    print(f"\nGBL (naive GPU port):  simulated {naive.device_seconds:.2e}s, "
          f"{naive.metrics.global_transactions} memory transactions")
    print(f"GBC (the paper's system): simulated {full.device_seconds:.2e}s, "
          f"{full.metrics.global_transactions} memory transactions")
    print(f"\nGBC vs GBL speedup (simulated): "
          f"{naive.device_seconds / full.device_seconds:.1f}x")
    print(f"transaction reduction from HTB: "
          f"{naive.metrics.global_transactions / max(full.metrics.global_transactions, 1):.1f}x")
    print(f"thread utilisation: GBL {naive.metrics.utilization * 100:.1f}% "
          f"-> GBC {full.metrics.utilization * 100:.1f}% (hybrid DFS-BFS)")

    # when only the count matters, drop the instrumented simulation and
    # run the same search on the fast kernel backend
    fast = gbc_count(graph, query, backend="fast")
    assert fast.count == full.count
    print(f"\nGBC on the fast backend: {fast.count} bicliques in "
          f"{fast.wall_seconds:.3f}s wall (instrumentation compiled out; "
          f"sim-backend host time was {full.wall_seconds:.3f}s)")


if __name__ == "__main__":
    main()
